package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Handler builds the daemon's HTTP API over the service:
//
//	POST   /v1/jobs             submit a job (JobSpec JSON) → 201 View
//	GET    /v1/jobs             list all jobs
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result completed result (?assignment=0 omits labels)
//	DELETE /v1/jobs/{id}        abort (graceful: checkpoint, then stop)
//	GET    /v1/jobs/{id}/events SSE progress stream (Last-Event-ID resumes)
//	GET    /v1/stats            daemon counters
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleAbort)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeErr maps service error kinds onto HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDone), errors.Is(err, ErrJobTerminal):
		status = http.StatusConflict
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, fmt.Errorf("%w: body: %v", ErrBadSpec, err))
		return
	}
	v, err := s.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+v.ID)
	writeJSON(w, http.StatusCreated, v)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	v, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	withAssignment := r.URL.Query().Get("assignment") != "0"
	res, err := s.Result(r.PathValue("id"), withAssignment)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleAbort(w http.ResponseWriter, r *http.Request) {
	v, err := s.Abort(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleEvents streams the job's progress as server-sent events. Every event
// carries its sequence number as the SSE id, so a client that reconnects
// with Last-Event-ID resumes exactly where it dropped — the per-job log is
// append-only and never trimmed while the job exists. The stream ends after
// a terminal event (done/failed/aborted) or when the client goes away.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	h, err := s.Events(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	var from int64
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if n, err := strconv.ParseInt(lid, 10, 64); err == nil && n > 0 {
			from = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sub, cancel := h.subscribe()
	defer cancel()
	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		events, closed := h.since(from)
		for _, e := range events {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data)
			from = e.Seq
		}
		if len(events) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.wake:
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}
