// Package service implements community-detection-as-a-service: a resident
// daemon surface over the supervised distributed Louvain runtime. Clients
// submit jobs (a graph plus an algorithm configuration) over HTTP/JSON; a
// FIFO-with-priorities queue admits them against a fixed total rank budget;
// each admitted job runs as a supervised in-process world (crash restart,
// hang detection and degrade-to-fewer-ranks inherited from
// internal/supervisor) with its own checkpoint directory, so any job is
// individually resumable — including across a daemon restart. Completed
// results are cached keyed on (graph fingerprint, config fingerprint):
// Louvain here is deterministic given both, so a duplicate submission is
// served without launching a world. Progress streams to clients as
// server-sent events built from the supervisor beacon channel.
package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"distlouvain/internal/core"
)

// State is a job's lifecycle position. Transitions are monotone:
// queued → running → {done, failed, aborted}, with aborted also reachable
// straight from queued. Terminal states never change.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"  // accepted, waiting for rank budget
	StateRunning State = "running" // a supervised world is executing it
	StateDone    State = "done"    // result available (possibly from cache)
	StateFailed  State = "failed"  // supervisor gave up; Error explains
	StateAborted State = "aborted" // cancelled by a client or daemon drain
)

// Terminal reports whether the state can no longer change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateAborted
}

// JobSpec is what a client submits: the graph, the algorithm variant and its
// parameters, and scheduling hints. Exactly one of GraphPath and
// Vertices+Edges must be given.
type JobSpec struct {
	// GraphPath names a binary edge-list file (gio format) readable by the
	// daemon. The file is referenced in place, not copied: it must outlive
	// the job.
	GraphPath string `json:"graph_path,omitempty"`
	// Vertices+Edges submit the graph inline; the daemon materializes it
	// into the job directory. Each edge is [u, v, w] with 0-based vertex
	// IDs; a weight of 0 means 1. Inline IDs ride in float64s, so inline
	// submission is for graphs with IDs below 2^53 — use GraphPath beyond.
	Vertices int64        `json:"vertices,omitempty"`
	Edges    [][3]float64 `json:"edges,omitempty"`

	// Variant selects the paper's algorithm legend entry: baseline
	// (default), tc, et, etc, ettc.
	Variant string  `json:"variant,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"` // ET decay (default 0.25 for et/etc/ettc)
	Tau     float64 `json:"tau,omitempty"`   // convergence threshold (0 = 1e-6)
	Seed    uint64  `json:"seed,omitempty"`  // ET coin-flip seed
	Threads int     `json:"threads,omitempty"`
	// MaxPhases / MaxIterations cap the run (0 = library defaults).
	MaxPhases     int  `json:"max_phases,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	Coloring      bool `json:"coloring,omitempty"` // distance-1 color-class sweeps
	// Frontier selects the sweep's active-set mode: "" or "auto" (default,
	// dense/sparse switching), "dense", "sparse", "off" (full scan every
	// iteration). FrontierSparseThreshold tunes the auto switch point
	// (0 = library default 0.25).
	Frontier                string  `json:"frontier,omitempty"`
	FrontierSparseThreshold float64 `json:"frontier_sparse_threshold,omitempty"`

	// Ranks is the world size the scheduler admits (default 2, capped by
	// the daemon budget); MinRanks is the floor supervision may degrade to
	// (default 1).
	Ranks    int `json:"ranks,omitempty"`
	MinRanks int `json:"min_ranks,omitempty"`
	// Priority orders admission: higher first, FIFO within a class.
	Priority int `json:"priority,omitempty"`
	// NoCache skips the result-cache lookup (the completed result is still
	// inserted for later submissions).
	NoCache bool `json:"no_cache,omitempty"`
}

// config builds the core configuration the spec describes. Service jobs
// always gather the full assignment at rank 0 — that is the product.
func (sp JobSpec) config() (core.Config, error) {
	alpha := sp.Alpha
	if alpha == 0 {
		alpha = 0.25
	}
	var cfg core.Config
	switch sp.Variant {
	case "", "baseline":
		cfg = core.Baseline()
	case "tc":
		cfg = core.ThresholdCycling()
	case "et":
		cfg = core.ET(alpha)
	case "etc":
		cfg = core.ETC(alpha)
	case "ettc":
		cfg = core.ETWithTC(alpha)
	default:
		return core.Config{}, fmt.Errorf("unknown variant %q", sp.Variant)
	}
	cfg.Tau = sp.Tau
	cfg.Seed = sp.Seed
	cfg.Threads = sp.Threads
	cfg.MaxPhases = sp.MaxPhases
	cfg.MaxIterations = sp.MaxIterations
	cfg.UseColoring = sp.Coloring
	front, err := core.ParseFrontier(sp.Frontier)
	if err != nil {
		return core.Config{}, err
	}
	cfg.Frontier = front
	cfg.FrontierSparseThreshold = sp.FrontierSparseThreshold
	cfg.GatherOutput = true
	return cfg, nil
}

// Progress is the latest streamed position of a running job.
type Progress struct {
	Phase      int     `json:"phase"`
	Iteration  int     `json:"iteration"`
	Modularity float64 `json:"modularity"`
}

// Result is a completed job's outcome. Assignment maps every original
// vertex to its final community label.
type Result struct {
	Modularity  float64 `json:"modularity"`
	Communities int64   `json:"communities"`
	Phases      int     `json:"phases"`
	Iterations  int     `json:"iterations"`
	RuntimeMS   int64   `json:"runtime_ms"`
	CacheHit    bool    `json:"cache_hit"`
	Resumed     bool    `json:"resumed"` // continued from a committed checkpoint
	Assignment  []int64 `json:"assignment,omitempty"`
}

// Job is one submission's full server-side record.
type Job struct {
	ID  string
	Seq int64 // admission order within the daemon's lifetime

	Spec     JobSpec
	GraphFP  core.Fingerprint
	ConfigFP core.Fingerprint

	dir       string // per-job directory: job.json, ckpt/, graph.bin, result.labels
	graphPath string // resolved graph file (Spec.GraphPath or materialized inline)
	vertices  int64

	events *hub

	mu        sync.Mutex
	state     State
	errMsg    string
	ranks     int // current world size while running (may shrink on degrade)
	restarts  int
	resumed   bool
	cacheHit  bool
	aborting  bool
	progress  Progress
	result    *Result
	created   time.Time
	started   time.Time
	finished  time.Time
	interrupt func() // graceful-stop hook while running (supervisor.Interrupt)
}

// ckptDir is the job's private checkpoint directory.
func (j *Job) ckptDir() string { return filepath.Join(j.dir, "ckpt") }

// View is the wire representation of a job's status.
type View struct {
	ID          string           `json:"id"`
	State       State            `json:"state"`
	Error       string           `json:"error,omitempty"`
	GraphFP     core.Fingerprint `json:"graph_fingerprint"`
	ConfigFP    core.Fingerprint `json:"config_fingerprint"`
	Variant     string           `json:"variant"`
	Vertices    int64            `json:"vertices"`
	Ranks       int              `json:"ranks"`
	Priority    int              `json:"priority"`
	Restarts    int              `json:"restarts"`
	Resumed     bool             `json:"resumed,omitempty"`
	CacheHit    bool             `json:"cache_hit,omitempty"`
	Progress    Progress         `json:"progress"`
	Modularity  float64          `json:"modularity,omitempty"`
	Communities int64            `json:"communities,omitempty"`
	CreatedMS   int64            `json:"created_unix_ms,omitempty"`
	StartedMS   int64            `json:"started_unix_ms,omitempty"`
	FinishedMS  int64            `json:"finished_unix_ms,omitempty"`
}

// view snapshots the job for the API.
func (j *Job) view() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:       j.ID,
		State:    j.state,
		Error:    j.errMsg,
		GraphFP:  j.GraphFP,
		ConfigFP: j.ConfigFP,
		Variant:  j.Spec.Variant,
		Vertices: j.vertices,
		Ranks:    j.ranks,
		Priority: j.Spec.Priority,
		Restarts: j.restarts,
		Resumed:  j.resumed,
		CacheHit: j.cacheHit,
		Progress: sanitizeProgress(j.progress),
	}
	if j.result != nil {
		v.Modularity = sanitizeFloat(j.result.Modularity)
		v.Communities = j.result.Communities
	}
	v.CreatedMS = unixMS(j.created)
	v.StartedMS = unixMS(j.started)
	v.FinishedMS = unixMS(j.finished)
	return v
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// jobRecord is the persisted form of a job (job.json in its directory). The
// full assignment lives next to it in result.labels; the record carries only
// the summary. Version gates schema evolution.
type jobRecord struct {
	Version  int              `json:"version"`
	ID       string           `json:"id"`
	Seq      int64            `json:"seq"`
	Spec     JobSpec          `json:"spec"`
	GraphFP  core.Fingerprint `json:"graph_fingerprint"`
	ConfigFP core.Fingerprint `json:"config_fingerprint"`
	Graph    string           `json:"graph"` // resolved graph path
	Vertices int64            `json:"vertices"`
	State    State            `json:"state"`
	Error    string           `json:"error,omitempty"`
	Restarts int              `json:"restarts,omitempty"`
	Resumed  bool             `json:"resumed,omitempty"`
	CacheHit bool             `json:"cache_hit,omitempty"`
	Result   *Result          `json:"result,omitempty"` // summary only; Assignment elided
}

// jobRecordVersion is the current job.json schema version.
const jobRecordVersion = 1

// persist writes the job's durable record atomically (write + rename), so a
// daemon crash mid-write can never corrupt a recoverable job.
func (j *Job) persist() error {
	j.mu.Lock()
	rec := jobRecord{
		Version:  jobRecordVersion,
		ID:       j.ID,
		Seq:      j.Seq,
		Spec:     j.Spec,
		GraphFP:  j.GraphFP,
		ConfigFP: j.ConfigFP,
		Graph:    j.graphPath,
		Vertices: j.vertices,
		State:    j.state,
		Error:    j.errMsg,
		Restarts: j.restarts,
		Resumed:  j.resumed,
		CacheHit: j.cacheHit,
	}
	if j.result != nil {
		summary := *j.result
		summary.Assignment = nil
		summary.Modularity = sanitizeFloat(summary.Modularity)
		rec.Result = &summary
	}
	j.mu.Unlock()

	data, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(j.dir, "job.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadJobRecord reads one persisted job record.
func loadJobRecord(dir string) (*jobRecord, error) {
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return nil, err
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("service: %s: corrupt job record: %w", dir, err)
	}
	if rec.Version != jobRecordVersion {
		return nil, fmt.Errorf("service: %s: unsupported job record version %d", dir, rec.Version)
	}
	if rec.ID == "" {
		return nil, fmt.Errorf("service: %s: job record without an ID", dir)
	}
	return &rec, nil
}
