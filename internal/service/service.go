package service

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distlouvain/internal/ckpt"
	"distlouvain/internal/core"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/obsv"
)

// API error kinds, for transport layers to map onto status codes.
var (
	ErrBadSpec     = errors.New("service: invalid job spec")
	ErrQueueFull   = errors.New("service: job queue is full")
	ErrClosed      = errors.New("service: daemon is draining")
	ErrNotFound    = errors.New("service: no such job")
	ErrNotDone     = errors.New("service: job has no result yet")
	ErrJobTerminal = errors.New("service: job already finished")
)

// Options tunes the service.
type Options struct {
	// DataDir roots the per-job directories (jobs/<id>/ with job.json,
	// ckpt/, optional graph.bin and result.labels). Required.
	DataDir string
	// RankBudget is the total number of ranks that may run concurrently
	// across all admitted jobs (≤0 selects GOMAXPROCS). A single job may
	// ask for at most this many.
	RankBudget int
	// MaxQueue bounds the number of waiting jobs; submissions beyond it are
	// rejected with ErrQueueFull (≤0 selects 256).
	MaxQueue int
	// CacheCap bounds the result cache entry count (≤0 selects 128).
	CacheCap int
	// KeepJobs bounds how many TERMINAL job directories are retained;
	// beyond it the oldest are garbage-collected, records and checkpoints
	// alike (≤0 selects 64). Live jobs are never collected.
	KeepJobs int

	// Supervision knobs, applied to every job's world.
	MaxRestarts int           // restart budget per job (≤0 selects 5)
	Backoff     time.Duration // base restart backoff (≤0 selects 200ms)
	HangMin     time.Duration // hang-detector window floor (≤0 selects 5s)
	HangMax     time.Duration // hang-detector window cap (≤0 selects 2m)
	Poll        time.Duration // detector poll cadence (≤0 selects 100ms)

	// Logf receives service progress lines; nil discards them.
	Logf func(format string, args ...any)
	// Registry, when set, receives job lifecycle events and a "service"
	// counter source for expvar exposure. nil disables.
	Registry *obsv.Registry
}

func (o *Options) fill() {
	if o.RankBudget <= 0 {
		o.RankBudget = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 256
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 128
	}
	if o.KeepJobs <= 0 {
		o.KeepJobs = 64
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 5
	}
	if o.Backoff <= 0 {
		o.Backoff = 200 * time.Millisecond
	}
	if o.HangMin <= 0 {
		o.HangMin = 5 * time.Second
	}
	if o.HangMax <= 0 {
		o.HangMax = 2 * time.Minute
	}
	if o.Poll <= 0 {
		o.Poll = 100 * time.Millisecond
	}
}

// serviceCounters aggregates lifetime totals for /v1/stats and expvar.
type serviceCounters struct {
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	aborted   atomic.Int64
	cacheHits atomic.Int64
	restarts  atomic.Int64
	launched  atomic.Int64 // world attempts launched (0 growth on cache hits)
}

func (c *serviceCounters) snapshot() map[string]int64 {
	return map[string]int64{
		"jobs_submitted":  c.submitted.Load(),
		"jobs_completed":  c.completed.Load(),
		"jobs_failed":     c.failed.Load(),
		"jobs_aborted":    c.aborted.Load(),
		"cache_hits":      c.cacheHits.Load(),
		"restarts":        c.restarts.Load(),
		"worlds_launched": c.launched.Load(),
	}
}

// Service is the community-detection-as-a-service engine: job registry,
// admission queue, rank-budget scheduler, result cache and recovery. The
// HTTP layer in api.go is a thin skin over its methods.
type Service struct {
	opt      Options
	reg      *obsv.Registry
	counters serviceCounters

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job         // by Seq, for stable listings and GC
	queue   jobQueue       // waiting for budget
	running map[string]int // job ID → ranks currently held from the budget
	used    int            // sum of running values
	seq     int64
	closed  bool

	cache *resultCache
	wg    sync.WaitGroup // one entry per running job goroutine
}

// New opens (or creates) a service over DataDir and recovers every
// persisted job: completed results re-warm the cache, interrupted and queued
// jobs re-enter the admission queue and resume from their own committed
// checkpoints.
func New(opt Options) (*Service, error) {
	opt.fill()
	if opt.DataDir == "" {
		return nil, errors.New("service: Options.DataDir is required")
	}
	s := &Service{
		opt:     opt,
		reg:     opt.Registry,
		jobs:    make(map[string]*Job),
		running: make(map[string]int),
		cache:   newResultCache(opt.CacheCap),
	}
	if err := os.MkdirAll(s.jobsDir(), 0o755); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.admitLocked()
	s.mu.Unlock()
	if s.reg != nil {
		s.reg.AttachCounters("service", s.counters.snapshot)
	}
	return s, nil
}

func (s *Service) jobsDir() string { return filepath.Join(s.opt.DataDir, "jobs") }

func (s *Service) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

func (s *Service) record(kind, name string, fields map[string]float64) {
	if s.reg != nil {
		s.reg.RecordEvent(kind, name, fields)
	}
}

// newJobID mints a collision-resistant job identifier.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: crypto/rand failed: %v", err)) // no sane fallback
	}
	return "j-" + hex.EncodeToString(b[:])
}

// normalize validates the spec, applies defaults in place, and returns the
// core configuration it describes. All violations wrap ErrBadSpec.
func (s *Service) normalize(spec *JobSpec) (core.Config, error) {
	bad := func(format string, args ...any) (core.Config, error) {
		return core.Config{}, fmt.Errorf("%w: %s", ErrBadSpec, fmt.Sprintf(format, args...))
	}
	hasInline := spec.Vertices != 0 || len(spec.Edges) > 0
	if spec.GraphPath == "" && !hasInline {
		return bad("a graph is required: graph_path or vertices+edges")
	}
	if spec.GraphPath != "" && hasInline {
		return bad("graph_path and inline vertices/edges are mutually exclusive")
	}
	if hasInline {
		if spec.Vertices < 1 {
			return bad("inline graph needs vertices >= 1")
		}
		for i, e := range spec.Edges {
			u, v, w := e[0], e[1], e[2]
			if u != math.Trunc(u) || v != math.Trunc(v) {
				return bad("edge %d: endpoints must be integers", i)
			}
			if u < 0 || v < 0 || int64(u) >= spec.Vertices || int64(v) >= spec.Vertices {
				return bad("edge %d: endpoint out of range [0, %d)", i, spec.Vertices)
			}
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return bad("edge %d: weight must be finite and non-negative", i)
			}
		}
	}
	if spec.Ranks == 0 {
		spec.Ranks = 2
		if s.opt.RankBudget < 2 {
			spec.Ranks = 1
		}
	}
	if spec.Ranks < 1 {
		return bad("ranks must be >= 1")
	}
	if spec.Ranks > s.opt.RankBudget {
		return bad("ranks %d exceeds the daemon rank budget %d", spec.Ranks, s.opt.RankBudget)
	}
	if spec.MinRanks == 0 {
		spec.MinRanks = 1
	}
	if spec.MinRanks < 1 || spec.MinRanks > spec.Ranks {
		return bad("min_ranks must be in [1, ranks]")
	}
	if spec.Threads < 0 || spec.Tau < 0 || spec.MaxPhases < 0 || spec.MaxIterations < 0 {
		return bad("threads, tau, max_phases and max_iterations must be non-negative")
	}
	if spec.Alpha < 0 || spec.Alpha > 1 {
		return bad("alpha must be in [0, 1]")
	}
	if spec.FrontierSparseThreshold < 0 || spec.FrontierSparseThreshold > 1 {
		return bad("frontier_sparse_threshold must be in [0, 1] (0 selects the default)")
	}
	cfg, err := spec.config()
	if err != nil {
		return bad("%v", err)
	}
	return cfg, nil
}

// Submit accepts a job: on a cache hit it settles immediately as done
// without launching a world; otherwise the job enters the admission queue
// (adopting a prior identical job's committed checkpoint when one exists, so
// resubmitting an aborted job resumes rather than restarts).
func (s *Service) Submit(spec JobSpec) (View, error) {
	cfg, err := s.normalize(&spec)
	if err != nil {
		return View{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return View{}, ErrClosed
	}
	if s.queue.len() >= s.opt.MaxQueue {
		s.mu.Unlock()
		return View{}, ErrQueueFull
	}
	s.seq++
	seq := s.seq
	s.mu.Unlock()

	id := newJobID()
	dir := filepath.Join(s.jobsDir(), id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return View{}, err
	}
	j := &Job{
		ID:      id,
		Seq:     seq,
		Spec:    spec,
		dir:     dir,
		events:  newHub(),
		state:   StateQueued,
		ranks:   spec.Ranks,
		created: time.Now(),
	}

	// Resolve the graph: reference a daemon-readable file, or materialize
	// the inline edges into the job directory.
	if spec.GraphPath != "" {
		hdr, err := gio.ReadHeader(spec.GraphPath)
		if err != nil {
			os.RemoveAll(dir)
			return View{}, fmt.Errorf("%w: graph_path: %v", ErrBadSpec, err)
		}
		j.graphPath, j.vertices = spec.GraphPath, hdr.Vertices
	} else {
		edges := make([]graph.RawEdge, len(spec.Edges))
		for i, e := range spec.Edges {
			w := e[2]
			if w == 0 {
				w = 1
			}
			edges[i] = graph.RawEdge{U: int64(e[0]), V: int64(e[1]), W: w}
		}
		j.graphPath = filepath.Join(dir, "graph.bin")
		if err := gio.WriteBinary(j.graphPath, spec.Vertices, edges); err != nil {
			os.RemoveAll(dir)
			return View{}, err
		}
		j.vertices = spec.Vertices
	}

	gfp, err := core.GraphFingerprint(j.graphPath)
	if err != nil {
		os.RemoveAll(dir)
		return View{}, err
	}
	j.GraphFP, j.ConfigFP = gfp, cfg.Fingerprint()
	s.counters.submitted.Add(1)
	s.record("job", "submitted", map[string]float64{"seq": float64(seq), "ranks": float64(spec.Ranks)})

	// Duplicate of a completed run? Serve it straight from the cache.
	if !spec.NoCache {
		if hit, ok := s.cache.get(s.cacheKey(j)); ok {
			s.settleFromCache(j, hit)
			s.registerJob(j)
			return j.view(), nil
		}
	}

	// A prior identical job that stopped short (aborted, failed, drained)
	// may have committed a checkpoint; adopt it so this job resumes instead
	// of restarting from scratch.
	if src := s.checkpointDonor(j); src != "" {
		if err := adoptCheckpoint(src, j.ckptDir()); err != nil {
			s.logf("job %s: checkpoint adoption from %s failed (cold start): %v", id, src, err)
		} else {
			s.logf("job %s: adopted committed checkpoint from %s", id, src)
		}
	}

	j.events.publish(Event{Kind: "queued", Ranks: spec.Ranks})
	if err := j.persist(); err != nil {
		os.RemoveAll(dir)
		return View{}, err
	}
	s.registerJob(j)
	s.mu.Lock()
	s.queue.push(j)
	s.admitLocked()
	s.mu.Unlock()
	return j.view(), nil
}

// cacheKey builds the job's result-cache key.
func (s *Service) cacheKey(j *Job) resultKey {
	return resultKey{Graph: j.GraphFP, Config: j.ConfigFP}
}

// settleFromCache completes a job instantly from a cached result.
func (s *Service) settleFromCache(j *Job, hit *cachedResult) {
	now := time.Now()
	j.mu.Lock()
	j.state = StateDone
	j.cacheHit = true
	j.started, j.finished = now, now
	j.result = &Result{
		Modularity:  hit.Modularity,
		Communities: hit.Communities,
		Phases:      hit.Phases,
		Iterations:  hit.Iterations,
		CacheHit:    true,
		Assignment:  hit.Assignment,
	}
	j.progress = Progress{Phase: hit.Phases, Modularity: sanitizeFloat(hit.Modularity)}
	j.mu.Unlock()
	s.counters.cacheHits.Add(1)
	s.record("job", "cache-hit", map[string]float64{"seq": float64(j.Seq)})
	j.events.publish(Event{Kind: "cache-hit", Msg: "served from result cache (computed by " + hit.SourceJob + ")"})
	j.events.publish(Event{Kind: "done", Modularity: hit.Modularity, Communities: hit.Communities, Phase: hit.Phases})
	if err := j.persist(); err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
	}
	s.logf("job %s: cache hit (graph %s, config %s)", j.ID, j.GraphFP, j.ConfigFP)
}

// checkpointDonor finds the most recent terminal-but-unfinished identical
// job whose directory holds a committed checkpoint.
func (s *Service) checkpointDonor(j *Job) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var donor *Job
	for _, cand := range s.order {
		if cand.GraphFP != j.GraphFP || cand.ConfigFP != j.ConfigFP {
			continue
		}
		cand.mu.Lock()
		eligible := (cand.state == StateAborted || cand.state == StateFailed)
		cand.mu.Unlock()
		if eligible && (donor == nil || cand.Seq > donor.Seq) && hasCheckpoint(cand.ckptDir()) {
			donor = cand
		}
	}
	if donor == nil {
		return ""
	}
	return donor.ckptDir()
}

// adoptCheckpoint copies a committed checkpoint (manifest last, so the copy
// commits atomically in the same order the original did).
func adoptCheckpoint(src, dst string) error {
	man, err := ckpt.ReadManifest(src)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	for _, f := range man.Files {
		if err := copyFile(filepath.Join(src, f), filepath.Join(dst, f)); err != nil {
			return err
		}
	}
	return ckpt.WriteManifest(dst, man)
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// registerJob adds the job to the registry maps.
func (s *Service) registerJob(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	sort.Slice(s.order, func(a, b int) bool { return s.order[a].Seq < s.order[b].Seq })
	s.mu.Unlock()
}

// admitLocked starts queued jobs while the head fits the remaining budget.
// Strictly in order: the head blocks admission until it fits (see jobQueue).
// Caller holds s.mu.
func (s *Service) admitLocked() {
	if s.closed {
		return
	}
	for {
		head := s.queue.head()
		if head == nil || s.used+head.Spec.Ranks > s.opt.RankBudget {
			return
		}
		j := s.queue.pop()
		s.running[j.ID] = j.Spec.Ranks
		s.used += j.Spec.Ranks
		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()
		j.events.publish(Event{Kind: "admitted", Ranks: j.Spec.Ranks})
		s.logf("job %s: admitted (%d ranks, %d/%d in use)", j.ID, j.Spec.Ranks, s.used, s.opt.RankBudget)
		s.record("job", "admitted", map[string]float64{"seq": float64(j.Seq), "ranks": float64(j.Spec.Ranks)})
		s.wg.Add(1)
		go s.startJob(j)
	}
}

// startJob re-checks the cache at admission (a duplicate may have completed
// while this job waited in the queue) and otherwise runs the world.
func (s *Service) startJob(j *Job) {
	if !j.Spec.NoCache {
		if hit, ok := s.cache.get(s.cacheKey(j)); ok {
			defer s.wg.Done()
			s.releaseJob(j)
			s.settleFromCache(j, hit)
			s.gc()
			return
		}
	}
	s.counters.launched.Add(1)
	s.runJob(j)
}

// resizeJob re-accounts a running job's rank usage when supervision changes
// its world size (degradation shrinks it; the freed ranks may admit a
// queued job immediately).
func (s *Service) resizeJob(j *Job, ranks int) {
	s.mu.Lock()
	if cur, ok := s.running[j.ID]; ok && ranks != cur {
		s.used += ranks - cur
		s.running[j.ID] = ranks
		s.logf("job %s: world resized %d → %d ranks (%d/%d in use)", j.ID, cur, ranks, s.used, s.opt.RankBudget)
		s.admitLocked()
	}
	s.mu.Unlock()
	j.mu.Lock()
	j.ranks = ranks
	j.mu.Unlock()
}

// releaseJob returns the job's ranks to the budget and admits what now fits.
func (s *Service) releaseJob(j *Job) {
	s.mu.Lock()
	if held, ok := s.running[j.ID]; ok {
		s.used -= held
		delete(s.running, j.ID)
	}
	s.admitLocked()
	s.mu.Unlock()
}

// finishJob settles a job after its supervised run returned: done on
// success; aborted when a client abort interrupted it; back to queued when a
// daemon drain interrupted it (the checkpoint makes it resumable on the next
// start); failed otherwise. It releases the budget first — the world is gone
// either way, and a queued job should take the ranks immediately.
func (s *Service) finishJob(j *Job, res *core.Result, runErr error) {
	s.releaseJob(j)
	now := time.Now()

	if runErr == nil {
		assignment := res.GlobalComm
		// Publish the cache entry and the labels file BEFORE the job turns
		// done: a client that polls this job to completion and instantly
		// resubmits must find the cache populated.
		if err := gio.WriteGroundTruth(filepath.Join(j.dir, "result.labels"), assignment); err != nil {
			s.logf("job %s: persist assignment: %v", j.ID, err)
		}
		s.cache.put(s.cacheKey(j), &cachedResult{
			Assignment:  assignment,
			Modularity:  sanitizeFloat(res.Modularity),
			Communities: res.Communities,
			Phases:      len(res.Phases),
			Iterations:  res.TotalIterations,
			SourceJob:   j.ID,
		})
		j.mu.Lock()
		j.state = StateDone
		j.finished = now
		j.result = &Result{
			Modularity:  sanitizeFloat(res.Modularity),
			Communities: res.Communities,
			Phases:      len(res.Phases),
			Iterations:  res.TotalIterations,
			RuntimeMS:   res.Runtime.Milliseconds(),
			Resumed:     j.resumed,
			Assignment:  assignment,
		}
		resumed := j.resumed
		j.mu.Unlock()
		s.counters.completed.Add(1)
		s.record("job", "done", map[string]float64{
			"seq": float64(j.Seq), "modularity": sanitizeFloat(res.Modularity),
			"communities": float64(res.Communities), "resumed": b2f(resumed),
		})
		j.events.publish(Event{Kind: "done", Modularity: res.Modularity, Communities: res.Communities, Phase: len(res.Phases)})
		s.logf("job %s: done: Q=%.6f communities=%d phases=%d", j.ID, res.Modularity, res.Communities, len(res.Phases))
	} else {
		drainedStop := s.draining() && errors.Is(runErr, core.ErrInterrupted)
		j.mu.Lock()
		aborting := j.aborting
		drained := drainedStop
		switch {
		case aborting:
			j.state = StateAborted
			j.errMsg = "aborted by client"
			j.finished = now
		case drained:
			// Daemon shutdown interrupted it; the committed checkpoint makes
			// it resumable, so it goes back to queued for the next start.
			j.state = StateQueued
		default:
			j.state = StateFailed
			j.errMsg = runErr.Error()
			j.finished = now
		}
		state := j.state
		j.mu.Unlock()
		switch state {
		case StateAborted:
			s.counters.aborted.Add(1)
			s.record("job", "aborted", map[string]float64{"seq": float64(j.Seq)})
			j.events.publish(Event{Kind: "aborted", Msg: fmt.Sprint(runErr)})
			s.logf("job %s: aborted (checkpoint retained for resubmission)", j.ID)
		case StateQueued:
			j.events.publish(Event{Kind: "queued", Msg: "interrupted by daemon drain; will resume"})
			s.logf("job %s: drained to checkpoint; queued for the next daemon start", j.ID)
		default:
			s.counters.failed.Add(1)
			s.record("job", "failed", map[string]float64{"seq": float64(j.Seq)})
			j.events.publish(Event{Kind: "failed", Msg: runErr.Error()})
			s.logf("job %s: failed: %v", j.ID, runErr)
		}
	}
	if err := j.persist(); err != nil {
		s.logf("job %s: persist: %v", j.ID, err)
	}
	s.gc()
}

func (s *Service) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Get returns a job's status view.
func (s *Service) Get(id string) (View, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return View{}, ErrNotFound
	}
	return j.view(), nil
}

// List returns every known job in submission order.
func (s *Service) List() []View {
	s.mu.Lock()
	jobs := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]View, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// Events returns the job's event hub for streaming.
func (s *Service) Events(id string) (*hub, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return nil, ErrNotFound
	}
	return j.events, nil
}

// Result returns a completed job's result. The assignment is loaded from
// the job directory when it is no longer in memory (daemon restarted since
// the job completed).
func (s *Service) Result(id string, withAssignment bool) (Result, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Result{}, ErrNotFound
	}
	j.mu.Lock()
	state := j.state
	var res Result
	if j.result != nil {
		res = *j.result
	}
	vertices := j.vertices
	dir := j.dir
	j.mu.Unlock()
	if state != StateDone {
		return Result{}, fmt.Errorf("%w (state %s)", ErrNotDone, state)
	}
	if !withAssignment {
		res.Assignment = nil
		return res, nil
	}
	if res.Assignment == nil {
		labels, err := gio.ReadGroundTruth(filepath.Join(dir, "result.labels"), vertices)
		if err != nil {
			return Result{}, fmt.Errorf("service: job %s: assignment no longer available: %w", id, err)
		}
		res.Assignment = labels
	}
	return res, nil
}

// Abort cancels a job. A queued job settles aborted immediately; a running
// job is gracefully interrupted — its world checkpoints at the next phase
// boundary, releases its ranks, and the committed checkpoint stays in the
// job directory so an identical resubmission resumes from it.
func (s *Service) Abort(id string) (View, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return View{}, ErrNotFound
	}
	if s.queue.remove(id) {
		j.mu.Lock()
		j.state = StateAborted
		j.errMsg = "aborted while queued"
		j.finished = time.Now()
		j.mu.Unlock()
		s.mu.Unlock()
		s.counters.aborted.Add(1)
		s.record("job", "aborted", map[string]float64{"seq": float64(j.Seq)})
		j.events.publish(Event{Kind: "aborted", Msg: "aborted while queued"})
		if err := j.persist(); err != nil {
			s.logf("job %s: persist: %v", j.ID, err)
		}
		s.gc()
		return j.view(), nil
	}
	s.mu.Unlock()

	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return j.view(), ErrJobTerminal
	}
	j.aborting = true
	intr := j.interrupt
	j.mu.Unlock()
	if intr != nil {
		intr() // supervisor.Interrupt: checkpoint at the next phase boundary
	}
	return j.view(), nil
}

// Stats is the daemon-level counter snapshot.
type Stats struct {
	RankBudget     int   `json:"rank_budget"`
	RanksInUse     int   `json:"ranks_in_use"`
	Queued         int   `json:"queued"`
	Running        int   `json:"running"`
	Jobs           int   `json:"jobs"`
	CacheEntries   int   `json:"cache_entries"`
	Submitted      int64 `json:"jobs_submitted"`
	Completed      int64 `json:"jobs_completed"`
	Failed         int64 `json:"jobs_failed"`
	Aborted        int64 `json:"jobs_aborted"`
	CacheHits      int64 `json:"cache_hits"`
	Restarts       int64 `json:"restarts"`
	WorldsLaunched int64 `json:"worlds_launched"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		RankBudget: s.opt.RankBudget,
		RanksInUse: s.used,
		Queued:     s.queue.len(),
		Running:    len(s.running),
		Jobs:       len(s.jobs),
	}
	s.mu.Unlock()
	st.CacheEntries = s.cache.len()
	st.Submitted = s.counters.submitted.Load()
	st.Completed = s.counters.completed.Load()
	st.Failed = s.counters.failed.Load()
	st.Aborted = s.counters.aborted.Load()
	st.CacheHits = s.counters.cacheHits.Load()
	st.Restarts = s.counters.restarts.Load()
	st.WorldsLaunched = s.counters.launched.Load()
	return st
}

// Close drains the service: no further admissions, every running world is
// gracefully interrupted (checkpointing at its next phase boundary and
// re-queuing as resumable), and Close returns when every job goroutine has
// settled.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	var intrs []func()
	for id := range s.running {
		if j := s.jobs[id]; j != nil {
			j.mu.Lock()
			if f := j.interrupt; f != nil {
				intrs = append(intrs, f)
			}
			j.mu.Unlock()
		}
	}
	s.mu.Unlock()
	for _, f := range intrs {
		f()
	}
	s.wg.Wait()
}

// recover rebuilds the registry from persisted job records: done jobs
// re-warm the result cache, live jobs re-enter the queue (their committed
// checkpoints make the re-run a resume).
func (s *Service) recover() error {
	entries, err := os.ReadDir(s.jobsDir())
	if err != nil {
		return err
	}
	type loaded struct {
		rec *jobRecord
		dir string
	}
	var recs []loaded
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(s.jobsDir(), e.Name())
		rec, err := loadJobRecord(dir)
		if err != nil {
			s.logf("recovery: skipping %s: %v", dir, err)
			continue
		}
		recs = append(recs, loaded{rec: rec, dir: dir})
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].rec.Seq < recs[b].rec.Seq })

	for _, l := range recs {
		rec := l.rec
		j := &Job{
			ID:        rec.ID,
			Seq:       rec.Seq,
			Spec:      rec.Spec,
			GraphFP:   rec.GraphFP,
			ConfigFP:  rec.ConfigFP,
			dir:       l.dir,
			graphPath: rec.Graph,
			vertices:  rec.Vertices,
			events:    newHub(),
			state:     rec.State,
			errMsg:    rec.Error,
			restarts:  rec.Restarts,
			resumed:   rec.Resumed,
			cacheHit:  rec.CacheHit,
			ranks:     rec.Spec.Ranks,
			created:   time.Now(),
		}
		if rec.Seq > s.seq {
			s.seq = rec.Seq
		}
		switch rec.State {
		case StateDone:
			j.result = rec.Result
			if j.result == nil {
				j.result = &Result{}
			}
			// Re-warm the cache from the persisted assignment so duplicates
			// keep short-circuiting across daemon restarts.
			if labels, err := gio.ReadGroundTruth(filepath.Join(l.dir, "result.labels"), rec.Vertices); err == nil {
				s.cache.put(resultKey{Graph: rec.GraphFP, Config: rec.ConfigFP}, &cachedResult{
					Assignment:  labels,
					Modularity:  j.result.Modularity,
					Communities: j.result.Communities,
					Phases:      j.result.Phases,
					Iterations:  j.result.Iterations,
					SourceJob:   rec.ID,
				})
			}
			j.events.publish(Event{Kind: "done", Modularity: j.result.Modularity, Communities: j.result.Communities, Phase: j.result.Phases})
		case StateFailed:
			j.events.publish(Event{Kind: "failed", Msg: rec.Error})
		case StateAborted:
			j.events.publish(Event{Kind: "aborted", Msg: rec.Error})
		default: // queued or running at crash time: re-enter the queue
			j.state = StateQueued
			resumable := hasCheckpoint(j.ckptDir())
			msg := "recovered after daemon restart"
			if resumable {
				msg += "; will resume from its committed checkpoint"
			}
			j.events.publish(Event{Kind: "queued", Msg: msg, Ranks: j.Spec.Ranks})
			s.queue.push(j)
			s.logf("recovery: job %s re-queued (resumable=%v)", j.ID, resumable)
		}
		s.jobs[j.ID] = j
		s.order = append(s.order, j)
	}
	return nil
}

// gc prunes the oldest terminal job directories beyond KeepJobs — records,
// results and checkpoints alike. Live jobs and the queue are never touched.
func (s *Service) gc() {
	s.mu.Lock()
	var terminal []*Job
	for _, j := range s.order {
		j.mu.Lock()
		if j.state.Terminal() {
			terminal = append(terminal, j)
		}
		j.mu.Unlock()
	}
	excess := len(terminal) - s.opt.KeepJobs
	var victims []*Job
	if excess > 0 {
		victims = terminal[:excess] // order is Seq-ascending: oldest first
		for _, v := range victims {
			delete(s.jobs, v.ID)
		}
		kept := s.order[:0]
		dead := make(map[string]bool, len(victims))
		for _, v := range victims {
			dead[v.ID] = true
		}
		for _, j := range s.order {
			if !dead[j.ID] {
				kept = append(kept, j)
			}
		}
		s.order = kept
	}
	s.mu.Unlock()
	for _, v := range victims {
		os.RemoveAll(v.dir)
		s.logf("gc: pruned terminal job %s", v.ID)
	}
}
