package par

import (
	"runtime"
	"sync"
)

// DefaultThreads is the worker-team size used when a caller passes a
// non-positive thread count. It mirrors OMP_NUM_THREADS defaulting to the
// hardware concurrency.
func DefaultThreads() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// For runs body(worker, lo, hi) on nworkers goroutines, statically splitting
// [0, n) into nworkers near-equal contiguous chunks, and waits for all of
// them. It is the moral equivalent of "#pragma omp parallel for schedule(static)".
//
// A worker whose chunk is empty is not spawned. With nworkers <= 1 the body
// runs inline, which keeps single-threaded configurations allocation-free.
func For(n, nworkers int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if nworkers <= 1 || n == 1 {
		body(0, 0, n)
		return
	}
	if nworkers > n {
		nworkers = n
	}
	var wg sync.WaitGroup
	chunk := n / nworkers
	rem := n % nworkers
	lo := 0
	for w := 0; w < nworkers; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		if hi > lo {
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				body(w, lo, hi)
			}(w, lo, hi)
		}
		lo = hi
	}
	wg.Wait()
}

// ForChunked is like For but uses dynamic chunk scheduling: workers pull
// fixed-size chunks from a shared cursor. It suits irregular per-index work
// such as sweeping vertices with skewed degree distributions
// ("#pragma omp parallel for schedule(dynamic, chunk)").
func ForChunked(n, nworkers, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 64
	}
	if nworkers <= 1 || n <= chunk {
		body(0, 0, n)
		return
	}
	var mu sync.Mutex
	next := 0
	take := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, 0, false
		}
		lo := next
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	for w := 0; w < nworkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				body(w, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// ReduceFloat64 computes the sum of per-worker partial results produced by
// body over [0, n). Each worker accumulates privately; partials are summed
// once at the end, so no atomics are involved in the hot loop.
func ReduceFloat64(n, nworkers int, body func(worker, lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	if nworkers <= 1 {
		return body(0, 0, n)
	}
	if nworkers > n {
		nworkers = n
	}
	partial := make([]float64, nworkers)
	For(n, nworkers, func(w, lo, hi int) {
		partial[w] = body(w, lo, hi)
	})
	var sum float64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// ReduceInt64 is ReduceFloat64 for integer partials.
func ReduceInt64(n, nworkers int, body func(worker, lo, hi int) int64) int64 {
	if n <= 0 {
		return 0
	}
	if nworkers <= 1 {
		return body(0, 0, n)
	}
	if nworkers > n {
		nworkers = n
	}
	partial := make([]int64, nworkers)
	For(n, nworkers, func(w, lo, hi int) {
		partial[w] = body(w, lo, hi)
	})
	var sum int64
	for _, v := range partial {
		sum += v
	}
	return sum
}
