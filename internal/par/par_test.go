package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1001} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			counts := make([]int32, n)
			For(n, w, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestForChunkedCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 500} {
		for _, w := range []int{1, 2, 4} {
			for _, chunk := range []int{0, 1, 16, 1000} {
				counts := make([]int32, n)
				ForChunked(n, w, chunk, func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("n=%d w=%d chunk=%d: index %d visited %d times", n, w, chunk, i, c)
					}
				}
			}
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	const n, w = 100, 4
	seen := make([]int32, w)
	For(n, w, func(worker, lo, hi int) {
		atomic.AddInt32(&seen[worker], 1)
	})
	total := int32(0)
	for _, s := range seen {
		total += s
	}
	if total == 0 {
		t.Fatal("no worker ran")
	}
}

func TestReduceFloat64(t *testing.T) {
	const n = 1000
	want := float64(n*(n-1)) / 2
	for _, w := range []int{1, 3, 8} {
		got := ReduceFloat64(n, w, func(_, lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if got != want {
			t.Fatalf("w=%d: sum=%g want %g", w, got, want)
		}
	}
}

func TestReduceInt64(t *testing.T) {
	got := ReduceInt64(100, 7, func(_, lo, hi int) int64 {
		return int64(hi - lo)
	})
	if got != 100 {
		t.Fatalf("got %d", got)
	}
	if ReduceInt64(0, 4, func(_, _, _ int) int64 { return 99 }) != 0 {
		t.Fatal("empty range should reduce to 0")
	}
}

func TestDefaultThreadsPositive(t *testing.T) {
	if DefaultThreads() < 1 {
		t.Fatal("DefaultThreads < 1")
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestMix64NotIdentity(t *testing.T) {
	if Mix64(0) == 0 || Mix64(1) == 1 {
		t.Fatal("Mix64 looks like identity")
	}
	if Mix64(7) != Mix64(7) {
		t.Fatal("Mix64 not deterministic")
	}
}

func TestXoshiroFloat64Range(t *testing.T) {
	g := NewXoshiro256(1)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestXoshiroFloat64Uniformish(t *testing.T) {
	g := NewXoshiro256(7)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(g.Float64()*10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d draws", b, c, n)
		}
	}
}

func TestXoshiroIntn(t *testing.T) {
	g := NewXoshiro256(3)
	for i := 0; i < 1000; i++ {
		v := g.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		v64 := g.Int63n(1 << 40)
		if v64 < 0 || v64 >= 1<<40 {
			t.Fatalf("Int63n out of range: %d", v64)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	g.Intn(0)
}

func TestStreamForIndependence(t *testing.T) {
	// Streams for different workers must differ; same worker must repeat.
	a := StreamFor(11, 0)
	b := StreamFor(11, 1)
	a2 := StreamFor(11, 0)
	diff := false
	for i := 0; i < 50; i++ {
		av := a.Next()
		if av != a2.Next() {
			t.Fatal("StreamFor not reproducible")
		}
		if av != b.Next() {
			diff = true
		}
	}
	if !diff {
		t.Fatal("worker streams identical")
	}
}

// Property: For with any worker count computes the same reduction as serial.
func TestQuickForMatchesSerial(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		ww := int(w%16) + 1
		var serial int64
		for i := 0; i < nn; i++ {
			serial += int64(i * i)
		}
		got := ReduceInt64(nn, ww, func(_, lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i * i)
			}
			return s
		})
		return got == serial
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
