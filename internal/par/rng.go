// Package par provides small parallel-programming utilities used across the
// repository: deterministic splittable random number generators, bounded
// worker pools, and a parallel-for helper with static range chunking.
//
// The package intentionally mirrors the OpenMP idioms of the original
// MPI+OpenMP code: a fixed team of workers sweeps a contiguous index range,
// and every worker owns a private, reproducible RNG stream.
package par

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both as a standalone generator for cheap hashing-style randomness and
// as the seeding procedure for Xoshiro256 streams.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64 uniformly distributed bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 round. It is the stateless variant
// used to derive per-vertex, per-iteration decisions that must be identical
// regardless of which rank owns the vertex.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256**, a fast high-quality PRNG suitable for
// Monte-Carlo style decisions such as the early-termination coin flips.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is expanded from seed with
// splitmix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// A theoretically possible all-zero state would lock the generator.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next 64 random bits.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("par: Intn with non-positive n")
	}
	return int(x.Next() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be positive.
func (x *Xoshiro256) Int63n(n int64) int64 {
	if n <= 0 {
		panic("par: Int63n with non-positive n")
	}
	return int64(x.Next() % uint64(n))
}

// Jump advances the generator by 2^128 steps, producing a stream that does
// not overlap the original for 2^128 draws. Worker w of a team typically
// uses a generator jumped w times.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Next()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// StreamFor returns an independent generator for the given worker index,
// derived from seed. Streams for distinct workers never overlap.
func StreamFor(seed uint64, worker int) *Xoshiro256 {
	g := NewXoshiro256(seed)
	for i := 0; i < worker; i++ {
		g.Jump()
	}
	return g
}
