// Package flat provides the flat open-addressing accumulation tables the
// Louvain hot paths use in place of Go maps: the ΔQ inner loop's
// neighbor-community weight accumulator and the coarsening step's
// (src,dst)→weight aggregator. The design follows the hashing-kernel idea
// of Forster's GPU Louvain (linear-probed power-of-two tables, no chaining)
// adapted to per-worker CPU use:
//
//   - Reset is O(1): every slot carries an epoch stamp, and a table is
//     emptied by bumping the table's epoch counter instead of clearing the
//     arrays. A slot is live only when its stamp equals the current epoch.
//     The stamp arrays are cleared for real only when the 32-bit epoch
//     wraps (once per ~4G resets).
//   - Iteration is over an explicit slot list in insertion order, so a
//     sweep that accumulates neighbor weights in CSR order observes its
//     communities in a deterministic order — unlike Go map ranging, which
//     is randomized per run. Determinism of every float sum downstream is
//     what makes the distributed trajectory reproducible bit for bit.
//   - Tables are meant to be per-worker and phase-lived: allocate once,
//     Reset per vertex (or per use), grow on demand. None of the methods
//     are safe for concurrent use of one table; distinct workers use
//     distinct tables.
package flat

// maxLoadNum/maxLoadDen give the 0.75 load factor above which a table
// doubles. Linear probing degrades sharply past ~0.8.
const (
	maxLoadNum = 3
	maxLoadDen = 4
	minCap     = 16
)

// mix64 is the splitmix64 finalizer, the same integer mixer the ET coin
// flips use; it scrambles community IDs (which are dense and correlated)
// into uniform probe starts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ceilPow2 returns the smallest power of two ≥ n (and ≥ minCap).
func ceilPow2(n int) int {
	c := minCap
	for c < n {
		c <<= 1
	}
	return c
}

// Table accumulates a float64 sum and an int64 count per int64 key. It is
// the scratch structure of the ΔQ sweep (sum = Σ w(v→C), count unused) and
// of the per-iteration community-delta batch (sum = ΔA_c, count = Δsize).
type Table struct {
	keys  []int64
	vals  []float64
	aux   []int64
	stamp []uint32
	slots []int32 // live slot indices in insertion order
	epoch uint32
	mask  uint64
}

// NewTable returns a table with capacity for about capHint live keys
// before the first growth.
func NewTable(capHint int) *Table {
	c := ceilPow2(capHint * maxLoadDen / maxLoadNum)
	return &Table{
		keys:  make([]int64, c),
		vals:  make([]float64, c),
		aux:   make([]int64, c),
		stamp: make([]uint32, c),
		slots: make([]int32, 0, capHint),
		epoch: 1,
		mask:  uint64(c - 1),
	}
}

// Reset empties the table in O(1) by advancing the epoch.
func (t *Table) Reset() {
	t.slots = t.slots[:0]
	t.epoch++
	if t.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		clear(t.stamp)
		t.epoch = 1
	}
}

// Len returns the number of live keys.
func (t *Table) Len() int { return len(t.slots) }

// slot returns the index of key's slot, claiming a fresh one (zeroed, added
// to the iteration list) when the key is absent this epoch.
func (t *Table) slot(key int64) int32 {
	i := mix64(uint64(key)) & t.mask
	for {
		if t.stamp[i] != t.epoch {
			t.stamp[i] = t.epoch
			t.keys[i] = key
			t.vals[i] = 0
			t.aux[i] = 0
			t.slots = append(t.slots, int32(i))
			if len(t.slots)*maxLoadDen > len(t.keys)*maxLoadNum {
				t.grow()
				return t.find(key)
			}
			return int32(i)
		}
		if t.keys[i] == key {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// find locates an existing live key (it must be present).
func (t *Table) find(key int64) int32 {
	i := mix64(uint64(key)) & t.mask
	for {
		if t.stamp[i] == t.epoch && t.keys[i] == key {
			return int32(i)
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the arrays and re-inserts live entries in insertion order,
// preserving the deterministic iteration sequence.
func (t *Table) grow() {
	old := *t
	c := len(old.keys) * 2
	t.keys = make([]int64, c)
	t.vals = make([]float64, c)
	t.aux = make([]int64, c)
	t.stamp = make([]uint32, c)
	t.slots = make([]int32, 0, len(old.slots)*2)
	t.mask = uint64(c - 1)
	t.epoch = 1
	for _, s := range old.slots {
		key := old.keys[s]
		i := mix64(uint64(key)) & t.mask
		for t.stamp[i] == t.epoch {
			i = (i + 1) & t.mask
		}
		t.stamp[i] = t.epoch
		t.keys[i] = key
		t.vals[i] = old.vals[s]
		t.aux[i] = old.aux[s]
		t.slots = append(t.slots, int32(i))
	}
}

// Add accumulates w into key's sum.
func (t *Table) Add(key int64, w float64) {
	s := t.slot(key)
	t.vals[s] += w
}

// AddDelta accumulates (dv, dn) into key's (sum, count).
func (t *Table) AddDelta(key int64, dv float64, dn int64) {
	s := t.slot(key)
	t.vals[s] += dv
	t.aux[s] += dn
}

// Get returns key's sum, or (0, false) when the key is absent.
func (t *Table) Get(key int64) (float64, bool) {
	i := mix64(uint64(key)) & t.mask
	for {
		if t.stamp[i] != t.epoch {
			return 0, false
		}
		if t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// At returns the i-th live (key, sum) in insertion order, 0 ≤ i < Len().
func (t *Table) At(i int) (int64, float64) {
	s := t.slots[i]
	return t.keys[s], t.vals[s]
}

// AtDelta returns the i-th live (key, sum, count) in insertion order.
func (t *Table) AtDelta(i int) (int64, float64, int64) {
	s := t.slots[i]
	return t.keys[s], t.vals[s], t.aux[s]
}

// PairTable accumulates a float64 sum per (a, b) int64 key pair — the
// coarse-arc aggregator of the rebuild step, where a parallel fine arc
// new(comm(v))→new(comm(u)) merges by weight addition.
type PairTable struct {
	ka    []int64
	kb    []int64
	vals  []float64
	stamp []uint32
	slots []int32
	epoch uint32
	mask  uint64
}

// NewPairTable returns a pair table with capacity for about capHint live
// pairs before the first growth.
func NewPairTable(capHint int) *PairTable {
	c := ceilPow2(capHint * maxLoadDen / maxLoadNum)
	return &PairTable{
		ka:    make([]int64, c),
		kb:    make([]int64, c),
		vals:  make([]float64, c),
		stamp: make([]uint32, c),
		slots: make([]int32, 0, capHint),
		epoch: 1,
		mask:  uint64(c - 1),
	}
}

// Reset empties the table in O(1) by advancing the epoch.
func (t *PairTable) Reset() {
	t.slots = t.slots[:0]
	t.epoch++
	if t.epoch == 0 {
		clear(t.stamp)
		t.epoch = 1
	}
}

// Len returns the number of live pairs.
func (t *PairTable) Len() int { return len(t.slots) }

func pairHash(a, b int64) uint64 {
	return mix64(uint64(a)*0x9e3779b97f4a7c15 ^ mix64(uint64(b)))
}

// Add accumulates w into (a, b)'s sum.
func (t *PairTable) Add(a, b int64, w float64) {
	i := pairHash(a, b) & t.mask
	for {
		if t.stamp[i] != t.epoch {
			t.stamp[i] = t.epoch
			t.ka[i] = a
			t.kb[i] = b
			t.vals[i] = w
			t.slots = append(t.slots, int32(i))
			if len(t.slots)*maxLoadDen > len(t.ka)*maxLoadNum {
				t.grow()
			}
			return
		}
		if t.ka[i] == a && t.kb[i] == b {
			t.vals[i] += w
			return
		}
		i = (i + 1) & t.mask
	}
}

// Get returns (a, b)'s sum, or (0, false) when the pair is absent.
func (t *PairTable) Get(a, b int64) (float64, bool) {
	i := pairHash(a, b) & t.mask
	for {
		if t.stamp[i] != t.epoch {
			return 0, false
		}
		if t.ka[i] == a && t.kb[i] == b {
			return t.vals[i], true
		}
		i = (i + 1) & t.mask
	}
}

// At returns the i-th live (a, b, sum) in insertion order, 0 ≤ i < Len().
func (t *PairTable) At(i int) (int64, int64, float64) {
	s := t.slots[i]
	return t.ka[s], t.kb[s], t.vals[s]
}

func (t *PairTable) grow() {
	old := *t
	c := len(old.ka) * 2
	t.ka = make([]int64, c)
	t.kb = make([]int64, c)
	t.vals = make([]float64, c)
	t.stamp = make([]uint32, c)
	t.slots = make([]int32, 0, len(old.slots)*2)
	t.mask = uint64(c - 1)
	t.epoch = 1
	for _, s := range old.slots {
		a, b := old.ka[s], old.kb[s]
		i := pairHash(a, b) & t.mask
		for t.stamp[i] == t.epoch {
			i = (i + 1) & t.mask
		}
		t.stamp[i] = t.epoch
		t.ka[i] = a
		t.kb[i] = b
		t.vals[i] = old.vals[s]
		t.slots = append(t.slots, int32(i))
	}
}
