package flat

import (
	"encoding/binary"
	"math"
	"sort"
	"testing"

	"distlouvain/internal/par"
)

func TestTableBasic(t *testing.T) {
	tab := NewTable(4)
	if tab.Len() != 0 {
		t.Fatalf("new table has %d entries", tab.Len())
	}
	tab.Add(7, 1.5)
	tab.Add(-3, 2.0)
	tab.Add(7, 0.25)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if v, ok := tab.Get(7); !ok || v != 1.75 {
		t.Fatalf("Get(7) = %v, %v", v, ok)
	}
	if v, ok := tab.Get(-3); !ok || v != 2.0 {
		t.Fatalf("Get(-3) = %v, %v", v, ok)
	}
	if _, ok := tab.Get(0); ok {
		t.Fatal("Get(0) found a key never inserted")
	}
	// Insertion order iteration.
	k0, v0 := tab.At(0)
	k1, v1 := tab.At(1)
	if k0 != 7 || v0 != 1.75 || k1 != -3 || v1 != 2.0 {
		t.Fatalf("At order = (%d,%v), (%d,%v)", k0, v0, k1, v1)
	}
}

func TestTableEpochReset(t *testing.T) {
	tab := NewTable(4)
	for round := 0; round < 1000; round++ {
		tab.Reset()
		if tab.Len() != 0 {
			t.Fatalf("round %d: Len %d after Reset", round, tab.Len())
		}
		if _, ok := tab.Get(int64(round)); ok {
			t.Fatalf("round %d: stale key visible after Reset", round)
		}
		tab.Add(int64(round), float64(round))
		if v, ok := tab.Get(int64(round)); !ok || v != float64(round) {
			t.Fatalf("round %d: Get = %v, %v", round, v, ok)
		}
	}
}

func TestTableEpochWrap(t *testing.T) {
	tab := NewTable(4)
	tab.Add(42, 1)
	tab.epoch = math.MaxUint32 // force the wrap path on the next Reset
	tab.Reset()
	if tab.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", tab.epoch)
	}
	if _, ok := tab.Get(42); ok {
		t.Fatal("stale key visible after epoch wrap")
	}
	tab.Add(9, 3)
	if v, ok := tab.Get(9); !ok || v != 3 {
		t.Fatalf("Get(9) after wrap = %v, %v", v, ok)
	}
}

func TestTableGrowthPreservesOrder(t *testing.T) {
	tab := NewTable(2)
	const n = 10000
	for i := 0; i < n; i++ {
		tab.AddDelta(int64(i*7), float64(i), int64(-i))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for i := 0; i < n; i++ {
		k, v, a := tab.AtDelta(i)
		if k != int64(i*7) || v != float64(i) || a != int64(-i) {
			t.Fatalf("entry %d = (%d, %v, %d)", i, k, v, a)
		}
	}
}

func TestPairTableBasic(t *testing.T) {
	tab := NewPairTable(4)
	tab.Add(1, 2, 0.5)
	tab.Add(2, 1, 1.0) // distinct pair: order matters
	tab.Add(1, 2, 0.5)
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if v, ok := tab.Get(1, 2); !ok || v != 1.0 {
		t.Fatalf("Get(1,2) = %v, %v", v, ok)
	}
	if v, ok := tab.Get(2, 1); !ok || v != 1.0 {
		t.Fatalf("Get(2,1) = %v, %v", v, ok)
	}
	if _, ok := tab.Get(2, 2); ok {
		t.Fatal("Get(2,2) found a pair never inserted")
	}
	a, b, v := tab.At(0)
	if a != 1 || b != 2 || v != 1.0 {
		t.Fatalf("At(0) = (%d,%d,%v)", a, b, v)
	}
}

func TestPairTableGrowthAndReset(t *testing.T) {
	tab := NewPairTable(2)
	const n = 3000
	for i := 0; i < n; i++ {
		tab.Add(int64(i%97), int64(i), 1)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatal("Reset left entries")
	}
	if _, ok := tab.Get(0, 0); ok {
		t.Fatal("stale pair visible after Reset")
	}
	tab.Add(5, 6, 2)
	if v, ok := tab.Get(5, 6); !ok || v != 2 {
		t.Fatalf("Get(5,6) = %v, %v", v, ok)
	}
}

// TestPerWorkerTablesUnderRace exercises one table per worker concurrently
// under par.For, the exact usage pattern of the sweep kernel. Run with
// -race: distinct tables must share no state.
func TestPerWorkerTablesUnderRace(t *testing.T) {
	const nw = 8
	tabs := make([]*Table, nw)
	for w := range tabs {
		tabs[w] = NewTable(16)
	}
	sums := make([]float64, nw)
	par.For(100000, nw, func(w, lo, hi int) {
		tab := tabs[w]
		for i := lo; i < hi; i++ {
			if i%64 == 0 {
				tab.Reset()
			}
			tab.Add(int64(i%53), 1)
		}
		var s float64
		for i := 0; i < tab.Len(); i++ {
			_, v := tab.At(i)
			s += v
		}
		sums[w] = s
	})
	for w, s := range sums {
		if s <= 0 {
			t.Fatalf("worker %d accumulated nothing", w)
		}
	}
}

// FuzzFlatTable drives a random insert/accumulate/reset sequence against a
// map[int64]float64 oracle: after every operation the table and the oracle
// must agree on membership, per-key sums (bit-exact — both accumulate in
// the same order) and iteration content.
func FuzzFlatTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 0})
	f.Add([]byte{0xff, 0x00, 0x10, 0x80, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := NewTable(2)
		oracle := make(map[int64]float64)
		var order []int64 // oracle insertion order
		for len(data) >= 2 {
			op := data[0] % 8
			data = data[1:]
			var key int64
			if len(data) >= 8 {
				key = int64(binary.LittleEndian.Uint64(data[:8])) % 1024
				data = data[8:]
			} else {
				key = int64(data[0]) % 1024
				data = data[1:]
			}
			switch op {
			case 7: // reset (rare relative to inserts)
				tab.Reset()
				oracle = make(map[int64]float64)
				order = order[:0]
			default:
				w := float64(op) * 0.37
				if _, seen := oracle[key]; !seen {
					order = append(order, key)
				}
				tab.Add(key, w)
				oracle[key] += w
			}
			if tab.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle has %d", tab.Len(), len(oracle))
			}
			if v, ok := tab.Get(key); op != 7 && (!ok || v != oracle[key]) {
				t.Fatalf("Get(%d) = %v,%v want %v", key, v, ok, oracle[key])
			}
		}
		// Full-content check including insertion order.
		for i, k := range order {
			gk, gv := tab.At(i)
			if gk != k || gv != oracle[k] {
				t.Fatalf("entry %d = (%d,%v), oracle (%d,%v)", i, gk, gv, k, oracle[k])
			}
		}
	})
}

// FuzzPairTable is FuzzFlatTable for the (src,dst) coarse-arc aggregator.
func FuzzPairTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		type pair struct{ a, b int64 }
		tab := NewPairTable(2)
		oracle := make(map[pair]float64)
		for len(data) >= 3 {
			a, b := int64(data[0])%64, int64(data[1])%64
			w := float64(data[2]) * 0.25
			data = data[3:]
			tab.Add(a, b, w)
			oracle[pair{a, b}] += w
			if v, ok := tab.Get(a, b); !ok || v != oracle[pair{a, b}] {
				t.Fatalf("Get(%d,%d) = %v,%v want %v", a, b, v, ok, oracle[pair{a, b}])
			}
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("Len = %d, oracle has %d", tab.Len(), len(oracle))
		}
		got := make(map[pair]float64, tab.Len())
		for i := 0; i < tab.Len(); i++ {
			a, b, v := tab.At(i)
			got[pair{a, b}] = v
		}
		keys := make([]pair, 0, len(oracle))
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].a != keys[j].a {
				return keys[i].a < keys[j].a
			}
			return keys[i].b < keys[j].b
		})
		for _, k := range keys {
			if got[k] != oracle[k] {
				t.Fatalf("pair %v = %v, oracle %v", k, got[k], oracle[k])
			}
		}
	})
}
