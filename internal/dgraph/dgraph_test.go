package dgraph

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/partition"
)

// chunkEdges splits an edge list into p contiguous chunks (how ranks would
// see a segmented binary file).
func chunkEdges(edges []graph.RawEdge, rank, size int) []graph.RawEdge {
	lo, hi := gio.SegmentRange(int64(len(edges)), rank, size)
	return edges[lo:hi]
}

// buildDistributed runs Build on p in-process ranks over the given graph
// and hands each rank's DistGraph to check.
func buildDistributed(t *testing.T, p int, n int64, edges []graph.RawEdge, check func(dg *DistGraph) error) {
	t.Helper()
	err := mpi.Run(p, func(c *mpi.Comm) error {
		dg, err := Build(c, n, chunkEdges(edges, c.Rank(), p), nil)
		if err != nil {
			return err
		}
		if err := dg.Validate(); err != nil {
			return err
		}
		return check(dg)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildMatchesSharedCSR(t *testing.T) {
	n, edges := gen.ErdosRenyi(100, 400, 17)
	ref := gen.Build(n, edges)
	for _, p := range []int{1, 2, 3, 4, 7} {
		buildDistributed(t, p, n, edges, func(dg *DistGraph) error {
			if dg.GlobalN != n {
				return fmt.Errorf("GlobalN = %d", dg.GlobalN)
			}
			if math.Abs(dg.M2-ref.TotalWeight()) > 1e-9 {
				return fmt.Errorf("M2 = %g, want %g", dg.M2, ref.TotalWeight())
			}
			// Per-vertex data must match the shared-memory reference.
			for lv := int64(0); lv < dg.LocalN; lv++ {
				g := dg.Global(lv)
				if math.Abs(dg.K[lv]-ref.WeightedDegree(g)) > 1e-9 {
					return fmt.Errorf("K[%d] = %g, want %g", g, dg.K[lv], ref.WeightedDegree(g))
				}
				if math.Abs(dg.SelfLoop[lv]-ref.SelfLoopWeight(g)) > 1e-9 {
					return fmt.Errorf("selfloop mismatch at %d", g)
				}
				nbrs := dg.Neighbors(lv)
				refN := ref.Neighbors(g)
				if len(nbrs) != len(refN) {
					return fmt.Errorf("degree(%d) = %d, want %d", g, len(nbrs), len(refN))
				}
				for i := range nbrs {
					if nbrs[i] != refN[i] {
						return fmt.Errorf("neighbour %d of %d differs", i, g)
					}
				}
			}
			return nil
		})
	}
}

func TestBuildGhostTables(t *testing.T) {
	// Path graph 0-1-2-3 over 2 ranks: rank 0 owns {0,1}, ghost {2};
	// rank 1 owns {2,3}, ghost {1}.
	edges := []graph.RawEdge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}}
	buildDistributed(t, 2, 4, edges, func(dg *DistGraph) error {
		switch dg.Comm.Rank() {
		case 0:
			if len(dg.Ghosts) != 1 || dg.Ghosts[0] != 2 || dg.GhostOwner[0] != 1 {
				return fmt.Errorf("rank 0 ghosts: %v owners %v", dg.Ghosts, dg.GhostOwner)
			}
		case 1:
			if len(dg.Ghosts) != 1 || dg.Ghosts[0] != 1 || dg.GhostOwner[0] != 0 {
				return fmt.Errorf("rank 1 ghosts: %v owners %v", dg.Ghosts, dg.GhostOwner)
			}
		}
		return nil
	})
}

func TestBuildSelfLoopsStayLocal(t *testing.T) {
	edges := []graph.RawEdge{{U: 0, V: 0, W: 5}, {U: 1, V: 2, W: 1}}
	buildDistributed(t, 3, 3, edges, func(dg *DistGraph) error {
		if dg.Comm.Rank() == 0 {
			if dg.LocalN != 1 || dg.SelfLoop[0] != 5 || dg.K[0] != 5 {
				return fmt.Errorf("self loop mishandled: K=%v self=%v", dg.K, dg.SelfLoop)
			}
			if len(dg.Ghosts) != 0 {
				return fmt.Errorf("self loop created ghost: %v", dg.Ghosts)
			}
		}
		return nil
	})
}

func TestBuildMergesParallelChunkEdges(t *testing.T) {
	// The same edge appearing in two different ranks' chunks must merge.
	edges := []graph.RawEdge{{U: 0, V: 1, W: 1}, {U: 0, V: 1, W: 2}}
	err := mpi.Run(2, func(c *mpi.Comm) error {
		chunk := []graph.RawEdge{edges[c.Rank()]}
		dg, err := Build(c, 2, chunk, nil)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if len(dg.Edges) != 1 || dg.Edges[0].W != 3 {
				return fmt.Errorf("edges not merged: %+v", dg.Edges)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		var chunk []graph.RawEdge
		if c.Rank() == 0 {
			chunk = []graph.RawEdge{{U: 0, V: 99, W: 1}}
		}
		_, err := Build(c, 4, chunk, nil)
		if c.Rank() == 0 {
			if err == nil {
				return fmt.Errorf("expected out-of-range error")
			}
			// Propagate so Run closes the world and unblocks rank 1,
			// which is waiting in the Alltoall rank 0 never entered.
			return fmt.Errorf("rank 0 aborted as expected: %w", err)
		}
		return nil // rank 1: Build fails with ErrClosed once the world shuts
	})
	if err == nil {
		t.Fatal("expected the run to report rank 0's abort")
	}
}

func TestBuildWithCustomPartition(t *testing.T) {
	n, edges := gen.ErdosRenyi(60, 200, 3)
	ref := gen.Build(n, edges)
	degrees := make([]int64, n)
	for v := int64(0); v < n; v++ {
		degrees[v] = ref.Degree(v)
	}
	p := 3
	part := partition.ByEdgeCount(degrees, p)
	err := mpi.Run(p, func(c *mpi.Comm) error {
		dg, err := Build(c, n, chunkEdges(edges, c.Rank(), p), part)
		if err != nil {
			return err
		}
		if err := dg.Validate(); err != nil {
			return err
		}
		lo, hi := part.Range(c.Rank())
		if dg.Base != lo || dg.LocalN != hi-lo {
			return fmt.Errorf("rank %d range [%d,%d) vs dg [%d,%d)", c.Rank(), lo, hi, dg.Base, dg.Base+dg.LocalN)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildPartitionShapeMismatch(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) error {
		_, err := Build(c, 10, nil, partition.ByVertexCount(5, 2))
		if err == nil {
			return fmt.Errorf("expected shape mismatch error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherToRootRoundTrip(t *testing.T) {
	n, edges := gen.ErdosRenyi(50, 150, 5)
	ref := gen.Build(n, edges)
	err := mpi.Run(3, func(c *mpi.Comm) error {
		dg, err := Build(c, n, chunkEdges(edges, c.Rank(), 3), nil)
		if err != nil {
			return err
		}
		got, err := dg.GatherToRoot()
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if got != nil {
				return fmt.Errorf("non-root got a graph")
			}
			return nil
		}
		if got.N != ref.N || got.NumArcs() != ref.NumArcs() {
			return fmt.Errorf("shape: N %d/%d arcs %d/%d", got.N, ref.N, got.NumArcs(), ref.NumArcs())
		}
		for v := int64(0); v < n; v++ {
			a, b := got.Neighbors(v), ref.Neighbors(v)
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("vertex %d differs", v)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmptyRank(t *testing.T) {
	// More ranks than vertices: high ranks own nothing but must still
	// participate.
	edges := []graph.RawEdge{{U: 0, V: 1, W: 1}}
	buildDistributed(t, 5, 2, edges, func(dg *DistGraph) error {
		if dg.Comm.Rank() >= 2 && dg.LocalN != 0 {
			return fmt.Errorf("rank %d owns %d vertices", dg.Comm.Rank(), dg.LocalN)
		}
		return nil
	})
}

func TestBuildFromBinaryFileSegments(t *testing.T) {
	// End-to-end: write a binary file, each rank reads its segment and
	// builds; the result must match the all-in-one build.
	n, edges := gen.ErdosRenyi(80, 300, 23)
	dir := t.TempDir()
	path := dir + "/g.bin"
	if err := gio.WriteBinary(path, n, edges); err != nil {
		t.Fatal(err)
	}
	ref := gen.Build(n, edges)
	const p = 4
	err := mpi.Run(p, func(c *mpi.Comm) error {
		chunk, err := gio.ReadSegment(path, c.Rank(), p)
		if err != nil {
			return err
		}
		dg, err := Build(c, n, chunk, nil)
		if err != nil {
			return err
		}
		if math.Abs(dg.M2-ref.TotalWeight()) > 1e-9 {
			return fmt.Errorf("M2 mismatch")
		}
		return dg.Validate()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEdgeBalancedPartition(t *testing.T) {
	// A star graph: the hub carries nearly all slots, so the hub's range
	// should be small and the partition must agree across ranks.
	n := int64(100)
	var edges []graph.RawEdge
	for v := int64(1); v < n; v++ {
		edges = append(edges, graph.RawEdge{U: 0, V: v, W: 1})
	}
	const p = 4
	var bounds [][]int64
	var mu sync.Mutex
	err := mpi.Run(p, func(c *mpi.Comm) error {
		part, err := EdgeBalancedPartition(c, n, chunkEdges(edges, c.Rank(), p))
		if err != nil {
			return err
		}
		if err := part.Validate(); err != nil {
			return err
		}
		mu.Lock()
		bounds = append(bounds, append([]int64(nil), part.Bounds...))
		mu.Unlock()
		// Build with it to prove it's usable end to end.
		dg, err := Build(c, n, chunkEdges(edges, c.Rank(), p), part)
		if err != nil {
			return err
		}
		return dg.Validate()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bounds); i++ {
		for j := range bounds[0] {
			if bounds[i][j] != bounds[0][j] {
				t.Fatalf("ranks computed different partitions: %v vs %v", bounds[i], bounds[0])
			}
		}
	}
	// The hub (vertex 0, degree 99 of 198 slots) should sit alone or
	// nearly alone in rank 0's range.
	if bounds[0][1] > 5 {
		t.Fatalf("rank 0 owns too many vertices for a star: bounds %v", bounds[0])
	}
}

func TestEdgeBalancedPartitionRejectsBadEdges(t *testing.T) {
	err := mpi.Run(1, func(c *mpi.Comm) error {
		_, err := EdgeBalancedPartition(c, 3, []graph.RawEdge{{U: 0, V: 9, W: 1}})
		if err == nil {
			return fmt.Errorf("expected range error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
