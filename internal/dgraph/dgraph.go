// Package dgraph implements the distributed graph representation of the
// paper's §IV: a 1-D decomposition where each rank owns a contiguous range
// of vertices and stores their adjacency lists in CSR form with *global*
// target IDs, plus a table of ghost vertices (vertices referenced by local
// edges but owned elsewhere).
//
// Construction starts from arbitrarily scattered undirected edge chunks —
// whatever portion of the input file (or generator output) each rank
// happens to hold — and shuffles every directed arc to the rank owning its
// source vertex via one personalized all-to-all exchange, exactly like the
// input-loading step of the paper's implementation.
package dgraph

import (
	"fmt"
	"sort"

	"distlouvain/internal/graph"
	"distlouvain/internal/mpi"
	"distlouvain/internal/partition"
)

// DistGraph is one rank's share of the distributed graph.
type DistGraph struct {
	Comm *mpi.Comm
	Part *partition.Partition

	// GlobalN is the global vertex count; M2 the global doubled edge
	// weight (identical at every rank).
	GlobalN int64
	M2      float64

	// Base is the first owned global vertex; LocalN the number owned.
	// Local vertex lv corresponds to global vertex Base+lv.
	Base   int64
	LocalN int64

	// Index/Edges form the local CSR: neighbours of local vertex lv are
	// Edges[Index[lv]:Index[lv+1]], with global target IDs.
	Index []int64
	Edges []graph.Edge

	// K and SelfLoop cache per-local-vertex weighted degree and self-loop
	// weight.
	K        []float64
	SelfLoop []float64

	// Ghosts lists (sorted) the global IDs of vertices referenced by local
	// edges but owned by other ranks; GhostOwner[i] is the owner of
	// Ghosts[i]; GhostIndex inverts Ghosts.
	Ghosts     []int64
	GhostOwner []int
	GhostIndex map[int64]int32
}

// Arc is one directed edge in transit between ranks. The coarsening step of
// the Louvain driver produces directed arcs natively (each fine arc maps to
// one coarse arc), which BuildFromArcs routes and assembles without the
// undirected expansion Build performs.
type Arc struct {
	From, To int64
	W        float64
}

// arc is the wire representation of one directed edge (24 bytes).
type arc struct {
	from, to int64
	w        float64
}

func encodeArcs(arcs []arc) []byte {
	buf := make([]byte, 0, 24*len(arcs))
	for _, a := range arcs {
		buf = mpi.AppendInt64(buf, a.from)
		buf = mpi.AppendInt64(buf, a.to)
		buf = mpi.AppendFloat64(buf, a.w)
	}
	return buf
}

func decodeArcs(buf []byte) ([]arc, error) {
	if len(buf)%24 != 0 {
		return nil, fmt.Errorf("dgraph: arc buffer length %d not a multiple of 24", len(buf))
	}
	d := mpi.NewDecoder(buf)
	out := make([]arc, len(buf)/24)
	for i := range out {
		f, _ := d.Int64()
		t, _ := d.Int64()
		w, err := d.Float64()
		if err != nil {
			return nil, err
		}
		out[i] = arc{f, t, w}
	}
	return out, nil
}

// EdgeBalancedPartition computes the paper's input decomposition: vertices
// are split into contiguous ranges so that "each process receives roughly
// the same number of edges". Every rank contributes the degree counts of
// its raw edge chunk; one allreduce yields the global degree vector, from
// which all ranks derive the same partition. O(n) memory per rank — the
// same cost the paper pays for its static ownership tables.
func EdgeBalancedPartition(c *mpi.Comm, n int64, localChunk []graph.RawEdge) (*partition.Partition, error) {
	degrees := make([]int64, n)
	for _, e := range localChunk {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("dgraph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		degrees[e.U]++
		if e.V != e.U {
			degrees[e.V]++
		}
	}
	global, err := c.AllreduceInt64s(degrees, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	return partition.ByEdgeCount(global, c.Size()), nil
}

// Build assembles the distributed graph. Every rank passes the same global
// vertex count n and its own arbitrary chunk of the undirected edge list
// (chunks together must cover the whole input exactly once). The vertex
// space is split with the given partition; passing nil selects the even
// vertex split.
func Build(c *mpi.Comm, n int64, localChunk []graph.RawEdge, part *partition.Partition) (*DistGraph, error) {
	p := c.Size()
	if part == nil {
		part = partition.ByVertexCount(n, p)
	}
	if part.N() != n || part.Size() != p {
		return nil, fmt.Errorf("dgraph: partition shape (N=%d, p=%d) does not match n=%d, p=%d",
			part.N(), part.Size(), n, p)
	}

	// Expand the undirected chunk into directed arcs bucketed by the
	// owner of the source vertex.
	buckets := make([][]arc, p)
	addArc := func(from, to int64, w float64) error {
		if from < 0 || from >= n || to < 0 || to >= n {
			return fmt.Errorf("dgraph: edge (%d,%d) out of range [0,%d)", from, to, n)
		}
		o := part.Owner(from)
		buckets[o] = append(buckets[o], arc{from, to, w})
		return nil
	}
	for _, e := range localChunk {
		if err := addArc(e.U, e.V, e.W); err != nil {
			return nil, err
		}
		if e.U != e.V {
			if err := addArc(e.V, e.U, e.W); err != nil {
				return nil, err
			}
		}
	}

	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		send[q] = encodeArcs(buckets[q])
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return nil, err
	}
	var mine []arc
	for _, buf := range recv {
		arcs, err := decodeArcs(buf)
		if err != nil {
			return nil, err
		}
		mine = append(mine, arcs...)
	}
	return fromLocalArcs(c, n, part, mine)
}

// BuildFromArcs assembles a distributed graph from directed arcs scattered
// arbitrarily across ranks: every arc is routed to the owner of its source
// vertex, parallel arcs are merged by weight, and the usual CSR + ghost
// tables are built. The arc set must already be symmetric (for every a→b
// some rank must hold b→a of equal total weight) — which the Louvain
// coarsening guarantees by construction.
func BuildFromArcs(c *mpi.Comm, n int64, part *partition.Partition, arcs []Arc) (*DistGraph, error) {
	p := c.Size()
	if part == nil {
		part = partition.ByVertexCount(n, p)
	}
	if part.N() != n || part.Size() != p {
		return nil, fmt.Errorf("dgraph: partition shape (N=%d, p=%d) does not match n=%d, p=%d",
			part.N(), part.Size(), n, p)
	}
	buckets := make([][]arc, p)
	for _, a := range arcs {
		if a.From < 0 || a.From >= n || a.To < 0 || a.To >= n {
			return nil, fmt.Errorf("dgraph: arc (%d,%d) out of range [0,%d)", a.From, a.To, n)
		}
		o := part.Owner(a.From)
		buckets[o] = append(buckets[o], arc{a.From, a.To, a.W})
	}
	send := make([][]byte, p)
	for q := 0; q < p; q++ {
		send[q] = encodeArcs(buckets[q])
	}
	recv, err := c.Alltoall(send)
	if err != nil {
		return nil, err
	}
	var mine []arc
	for _, buf := range recv {
		got, err := decodeArcs(buf)
		if err != nil {
			return nil, err
		}
		mine = append(mine, got...)
	}
	return fromLocalArcs(c, n, part, mine)
}

// fromLocalArcs finishes construction once every arc whose source this rank
// owns has arrived.
func fromLocalArcs(c *mpi.Comm, n int64, part *partition.Partition, mine []arc) (*DistGraph, error) {
	rank := c.Rank()
	base, hi := part.Range(rank)
	localN := hi - base

	sort.Slice(mine, func(i, j int) bool {
		if mine[i].from != mine[j].from {
			return mine[i].from < mine[j].from
		}
		return mine[i].to < mine[j].to
	})

	dg := &DistGraph{
		Comm: c, Part: part, GlobalN: n,
		Base: base, LocalN: localN,
		Index:      make([]int64, localN+1),
		K:          make([]float64, localN),
		SelfLoop:   make([]float64, localN),
		GhostIndex: make(map[int64]int32),
	}

	// Merge parallel arcs and fill the CSR.
	for i := 0; i < len(mine); {
		j := i + 1
		w := mine[i].w
		for j < len(mine) && mine[j].from == mine[i].from && mine[j].to == mine[i].to {
			w += mine[j].w
			j++
		}
		from, to := mine[i].from, mine[i].to
		if !part.Owns(rank, from) {
			return nil, fmt.Errorf("dgraph: rank %d received arc from unowned vertex %d", rank, from)
		}
		dg.Edges = append(dg.Edges, graph.Edge{To: to, W: w})
		lv := from - base
		dg.Index[lv+1]++
		dg.K[lv] += w
		if to == from {
			dg.SelfLoop[lv] += w
		}
		if !part.Owns(rank, to) {
			if _, seen := dg.GhostIndex[to]; !seen {
				dg.GhostIndex[to] = -1 // slot assigned below
				dg.Ghosts = append(dg.Ghosts, to)
			}
		}
		i = j
	}
	for lv := int64(0); lv < localN; lv++ {
		dg.Index[lv+1] += dg.Index[lv]
	}
	sort.Slice(dg.Ghosts, func(i, j int) bool { return dg.Ghosts[i] < dg.Ghosts[j] })
	dg.GhostOwner = make([]int, len(dg.Ghosts))
	for i, g := range dg.Ghosts {
		dg.GhostIndex[g] = int32(i)
		dg.GhostOwner[i] = part.Owner(g)
	}

	var localW float64
	for _, e := range dg.Edges {
		localW += e.W
	}
	m2, err := c.AllreduceFloat64(localW, mpi.OpSum)
	if err != nil {
		return nil, err
	}
	dg.M2 = m2
	return dg, nil
}

// Neighbors returns the adjacency slice of local vertex lv (global targets).
func (dg *DistGraph) Neighbors(lv int64) []graph.Edge {
	return dg.Edges[dg.Index[lv]:dg.Index[lv+1]]
}

// Global converts a local vertex index to its global ID.
func (dg *DistGraph) Global(lv int64) int64 { return dg.Base + lv }

// IsLocal reports whether global vertex g is owned by this rank.
func (dg *DistGraph) IsLocal(g int64) bool {
	return g >= dg.Base && g < dg.Base+dg.LocalN
}

// LocalArcs returns the number of stored directed slots on this rank.
func (dg *DistGraph) LocalArcs() int64 { return int64(len(dg.Edges)) }

// Validate checks local structural invariants plus the cheap global ones.
func (dg *DistGraph) Validate() error {
	if int64(len(dg.Index)) != dg.LocalN+1 {
		return fmt.Errorf("dgraph: index length %d, want %d", len(dg.Index), dg.LocalN+1)
	}
	for lv := int64(0); lv < dg.LocalN; lv++ {
		if dg.Index[lv+1] < dg.Index[lv] {
			return fmt.Errorf("dgraph: index not monotone at %d", lv)
		}
	}
	if dg.Index[dg.LocalN] != int64(len(dg.Edges)) {
		return fmt.Errorf("dgraph: index end %d, want %d", dg.Index[dg.LocalN], len(dg.Edges))
	}
	for i, e := range dg.Edges {
		if e.To < 0 || e.To >= dg.GlobalN {
			return fmt.Errorf("dgraph: slot %d targets out-of-range vertex %d", i, e.To)
		}
		if e.W < 0 {
			return fmt.Errorf("dgraph: slot %d has negative weight", i)
		}
	}
	for i, g := range dg.Ghosts {
		if dg.IsLocal(g) {
			return fmt.Errorf("dgraph: ghost %d is locally owned", g)
		}
		if i > 0 && dg.Ghosts[i-1] >= g {
			return fmt.Errorf("dgraph: ghosts not sorted/unique at %d", i)
		}
		if dg.GhostOwner[i] != dg.Part.Owner(g) {
			return fmt.Errorf("dgraph: ghost %d has wrong owner", g)
		}
	}
	return nil
}

// GatherToRoot reconstructs the whole graph at rank 0 (as an in-memory CSR)
// for verification; other ranks return nil. Intended for tests and small
// graphs only.
func (dg *DistGraph) GatherToRoot() (*graph.CSR, error) {
	var local []arc
	for lv := int64(0); lv < dg.LocalN; lv++ {
		g := dg.Global(lv)
		for _, e := range dg.Neighbors(lv) {
			local = append(local, arc{g, e.To, e.W})
		}
	}
	blocks, err := dg.Comm.Gatherv(0, encodeArcs(local))
	if err != nil {
		return nil, err
	}
	if dg.Comm.Rank() != 0 {
		return nil, nil
	}
	adj := make([][]graph.Edge, dg.GlobalN)
	for _, b := range blocks {
		arcs, err := decodeArcs(b)
		if err != nil {
			return nil, err
		}
		for _, a := range arcs {
			adj[a.from] = append(adj[a.from], graph.Edge{To: a.to, W: a.w})
		}
	}
	for _, list := range adj {
		sort.Slice(list, func(i, j int) bool { return list[i].To < list[j].To })
	}
	return graph.FromAdjacency(adj), nil
}
