package distlouvain_test

import (
	"fmt"

	"distlouvain"
)

// Two triangles joined by a weak bridge: the canonical two-community input.
func twoTriangles() (int64, []distlouvain.Edge) {
	return 6, []distlouvain.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
		{U: 2, V: 3, W: 0.1},
	}
}

func ExampleDetect() {
	n, edges := twoTriangles()
	res, err := distlouvain.Detect(n, edges, distlouvain.Options{Ranks: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("communities:", res.NumCommunities)
	fmt.Println("same side:", res.Communities[0] == res.Communities[2])
	fmt.Println("across bridge:", res.Communities[2] == res.Communities[3])
	// Output:
	// communities: 2
	// same side: true
	// across bridge: false
}

func ExampleDetectSerial() {
	n, edges := twoTriangles()
	res, err := distlouvain.DetectSerial(n, edges, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("communities:", res.NumCommunities)
	// Output:
	// communities: 2
}

func ExampleCompareToGroundTruth() {
	truth := []int64{0, 0, 0, 1, 1, 1}
	detected := []int64{7, 7, 7, 9, 9, 9} // same partition, different labels
	score, err := distlouvain.CompareToGroundTruth(detected, truth)
	if err != nil {
		panic(err)
	}
	fmt.Printf("precision=%.1f recall=%.1f f=%.1f\n", score.Precision, score.Recall, score.FScore)
	// Output:
	// precision=1.0 recall=1.0 f=1.0
}

func ExampleModularity() {
	n, edges := twoTriangles()
	q := distlouvain.Modularity(n, edges, []int64{0, 0, 0, 1, 1, 1})
	fmt.Printf("%.3f\n", q)
	// Output:
	// 0.484
}
