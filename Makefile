# Build, test and reproduce targets for the distributed Louvain library.

GO ?= go

.PHONY: all build vet test test-race bench fuzz experiments experiments-md clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime; the heavier distributed tests stay
# in scope because the rank goroutines are exactly what it should inspect.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz passes over the input parsers.
fuzz:
	$(GO) test ./internal/gio -fuzz FuzzReadEdgeListText -fuzztime 30s
	$(GO) test ./internal/gio -fuzz FuzzReadHeader -fuzztime 30s
	$(GO) test ./internal/gio -fuzz FuzzGroundTruth -fuzztime 30s

# Regenerate every table and figure of the paper (text to stdout).
experiments:
	$(GO) run ./cmd/paperbench -exp all

# Same, as the markdown body used by EXPERIMENTS.md.
experiments-md:
	$(GO) run ./cmd/paperbench -exp all -markdown

clean:
	$(GO) clean ./...
