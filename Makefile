# Build, test and reproduce targets for the distributed Louvain library.

GO ?= go

.PHONY: all check build vet test test-race test-race-all test-chaos test-wan test-obsv test-frontier cover-core service-smoke golden bench bench-record bench-smoke fuzz experiments experiments-md clean

all: check

# The full gate: compile, static analysis, tests, and a race-detector pass
# over the packages that juggle rank goroutines, plus the multi-host WAN
# chaos suite over real sockets.
check: build vet test test-race service-smoke test-wan

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector multiplies runtime, so the default pass covers the
# concurrency-heavy packages: the transport/collective layer, the
# distributed algorithm driven on top of it, and the tracer that both emit
# spans into from rank goroutines.
test-race:
	$(GO) test -race ./internal/mpi/... ./internal/core/... ./internal/obsv/...

# End-to-end daemon gate: the service package's acceptance suite (budget
# scheduling, abort/resume bit-identity, cache hits, SSE) under the race
# detector, plus the process-level dlouvaind smoke test — start the real
# daemon, submit over HTTP (second job must hit the cache), stream SSE,
# compare the answer against a CLI dlouvain run, drain with SIGTERM.
service-smoke:
	$(GO) test -race -count=1 ./internal/service/... ./cmd/dlouvaind/...

# The observability suite under the race detector: golden trace-structure
# comparisons, determinism, zero-alloc disabled-path, and concurrent span
# emission. -count=1 defeats the test cache so reruns re-exercise the races.
test-obsv:
	$(GO) test -race -count=1 ./internal/obsv/...

# Regenerate the golden trace-structure files from the current run. Review
# the diff: it is the reviewable record of any control-flow or
# instrumentation-point change.
golden:
	$(GO) test ./internal/obsv -run TestGoldenTraces -update-golden -count=1

test-race-all:
	$(GO) test -race ./...

# The chaos suite under the race detector: supervised worlds with injected
# crashes (SIGKILL / transport kill), hangs (SIGSTOP / blocked collectives)
# and flapping, all required to converge bit-identical to an undisturbed
# run. Kept out of `check` because process spawning and hang windows make
# it slower than the fast gate.
test-chaos:
	$(GO) test -race -count=1 -run 'Chaos|Supervisor|Supervise|Interrupt|Detector|Backoff|Beacon' \
		./internal/supervisor/... ./internal/core/... ./cmd/dlouvain/...

# The frontier differential suite under the race detector: every
# graph × variant × rank-count × frontier-mode combination must reproduce
# the full-scan oracle bit-for-bit (trajectories, modularity bits, final
# assignment), including kill→resume, thread-count and coloring interplay,
# plus the frontier.Set unit/property tests.
test-frontier:
	$(GO) test -race -count=1 -run 'Frontier' ./internal/core/... ./internal/frontier/... ./internal/service/...

# go vet plus a race-mode coverage run over the algorithm core; prints the
# per-function coverage table CI publishes as the job summary.
cover-core:
	$(GO) vet ./internal/core/...
	$(GO) test -race -count=1 -covermode=atomic -coverprofile=cover_core.out ./internal/core
	$(GO) tool cover -func=cover_core.out

# The multi-host WAN chaos suite: coordinator rendezvous, host-agent and
# tcp-remote driver processes over real TCP sockets, disturbed by whole-host
# SIGKILL, asymmetric partitions (chaosnet proxy), absent coordinators,
# stale-epoch fencing and slow links — every run required to finish
# bit-identical to the undisturbed baseline. Includes the coordinator's and
# the chaos proxy's own unit suites.
test-wan:
	$(GO) test -race -count=1 ./internal/coord/... ./internal/chaosnet/...
	$(GO) test -race -count=1 -run TestWAN ./cmd/dlouvain/...

bench:
	$(GO) test -bench=. -benchmem ./...

# Re-record the committed benchmark baseline: full testbed runs with the
# per-phase timing breakdown plus the isolated hot-kernel measurements.
# Commit the resulting BENCH_paperbench.json; timing fields describe the
# recording machine, the modularity column is what CI gates on.
bench-record:
	$(GO) run ./cmd/paperbench -exp bench -json > BENCH_paperbench.json
	@echo "recorded BENCH_paperbench.json; review and commit it"

# CI smoke gate: rerun the bench workloads (no slow kernel timing), check
# the JSON schema and fail if any modularity deviates from the committed
# baseline beyond tolerance.
bench-smoke:
	$(GO) run ./cmd/paperbench -exp bench -json -kernels=false -check BENCH_paperbench.json > /dev/null

# Short fuzz passes over the input parsers, the checkpoint decoder, the
# flat kernel tables (vs a map oracle), the wire-v2 varint codec and the
# frontier active-set (vs a map+sort oracle).
fuzz:
	$(GO) test ./internal/gio -fuzz FuzzReadEdgeListText -fuzztime 30s
	$(GO) test ./internal/gio -fuzz FuzzReadHeader -fuzztime 30s
	$(GO) test ./internal/gio -fuzz FuzzGroundTruth -fuzztime 30s
	$(GO) test ./internal/ckpt -fuzz FuzzReadSnapshot -fuzztime 30s
	$(GO) test ./internal/flat -fuzz FuzzFlatTable -fuzztime 30s
	$(GO) test ./internal/flat -fuzz FuzzPairTable -fuzztime 30s
	$(GO) test ./internal/mpi -fuzz FuzzVarintCodec -fuzztime 30s
	$(GO) test ./internal/frontier -fuzz FuzzFrontierSet -fuzztime 30s

# Regenerate every table and figure of the paper (text to stdout).
experiments:
	$(GO) run ./cmd/paperbench -exp all

# Same, as the markdown body used by EXPERIMENTS.md.
experiments-md:
	$(GO) run ./cmd/paperbench -exp all -markdown

clean:
	$(GO) clean ./...
