package distlouvain

import (
	"math"
	"path/filepath"
	"testing"
)

func cliqueEdges() (int64, []Edge) {
	var edges []Edge
	clique := func(vs []int64) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, Edge{U: vs[i], V: vs[j], W: 1})
			}
		}
	}
	clique([]int64{0, 1, 2, 3})
	clique([]int64{4, 5, 6, 7})
	edges = append(edges, Edge{U: 3, V: 4, W: 1})
	return 8, edges
}

func TestDetectQuickstart(t *testing.T) {
	n, edges := cliqueEdges()
	res, err := Detect(n, edges, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 2 {
		t.Fatalf("%d communities", res.NumCommunities)
	}
	if math.Abs(res.Modularity-Modularity(n, edges, res.Communities)) > 1e-9 {
		t.Fatal("modularity mismatch")
	}
	if res.Runtime <= 0 || res.TotalIterations == 0 || len(res.Phases) == 0 {
		t.Fatalf("missing run metadata: %+v", res)
	}
}

func TestDetectAllVariants(t *testing.T) {
	n, edges, _, err := GenerateLFR(1500, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Baseline, ThresholdCycling, EarlyTermination, EarlyTerminationC, EarlyTerminationTC} {
		opt := Options{Ranks: 2, Variant: v, Alpha: 0.25, Seed: 1}
		res, err := Detect(n, edges, opt)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if res.Modularity < 0.5 {
			t.Fatalf("%s: Q=%.3f suspiciously low for mu=0.2 LFR", v, res.Modularity)
		}
	}
}

func TestDetectVariantValidation(t *testing.T) {
	n, edges := cliqueEdges()
	if _, err := Detect(n, edges, Options{Variant: EarlyTermination}); err == nil {
		t.Fatal("expected Alpha validation error")
	}
	if _, err := Detect(n, edges, Options{Variant: Variant(99)}); err == nil {
		t.Fatal("expected unknown-variant error")
	}
	if _, err := Detect(-1, edges, Options{}); err == nil {
		t.Fatal("expected negative-n error")
	}
}

func TestDetectSerialAndShared(t *testing.T) {
	n, edges := cliqueEdges()
	s, err := DetectSerial(n, edges, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumCommunities != 2 {
		t.Fatalf("serial: %d communities", s.NumCommunities)
	}
	sh, err := DetectShared(n, edges, SharedOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumCommunities != 2 {
		t.Fatalf("shared: %d communities", sh.NumCommunities)
	}
	if math.Abs(s.Modularity-sh.Modularity) > 1e-9 {
		t.Fatalf("serial %g vs shared %g", s.Modularity, sh.Modularity)
	}
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		Baseline: "Baseline", ThresholdCycling: "Threshold Cycling",
		EarlyTermination: "ET", EarlyTerminationC: "ETC", EarlyTerminationTC: "ET+TC",
		Variant(42): "Variant(42)",
	} {
		if v.String() != want {
			t.Fatalf("%d: %q != %q", int(v), v.String(), want)
		}
	}
}

func TestGroundTruthScoring(t *testing.T) {
	n, edges, truth, err := GenerateSSCA2(2000, 15, 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Detect(n, edges, Options{Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	score, err := CompareToGroundTruth(res.Communities, truth)
	if err != nil {
		t.Fatal(err)
	}
	// Near-disjoint cliques: detection should recover them almost exactly.
	if score.FScore < 0.9 || score.Recall < 0.9 {
		t.Fatalf("SSCA2 recovery poor: %+v", score)
	}
}

func TestWorkloadGenerators(t *testing.T) {
	if n, edges, err := GenerateRMAT(8, 8, 1); err != nil || n != 256 || len(edges) == 0 {
		t.Fatalf("RMAT: n=%d len=%d err=%v", n, len(edges), err)
	}
	if n, edges := GenerateBandedMesh(100, 3); n != 100 || len(edges) == 0 {
		t.Fatalf("mesh: n=%d len=%d", n, len(edges))
	}
	if _, _, err := GenerateSmallWorld(100, 4, 0.1, 2); err != nil {
		t.Fatal(err)
	}
	if n, edges := GenerateRandom(50, 100, 3); n != 50 || len(edges) != 100 {
		t.Fatalf("random: n=%d len=%d", n, len(edges))
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	n, edges := cliqueEdges()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := WriteGraph(path, n, edges); err != nil {
		t.Fatal(err)
	}
	n2, edges2, err := ReadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || len(edges2) != len(edges) {
		t.Fatalf("round trip: n=%d edges=%d", n2, len(edges2))
	}
	res, err := Detect(n2, edges2, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCommunities != 2 {
		t.Fatalf("detection on re-read graph: %d communities", res.NumCommunities)
	}
}

func TestDetectExtensions(t *testing.T) {
	n, edges, _, err := GenerateLFR(2000, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Detect(n, edges, Options{Ranks: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Neighborhood collectives: identical result.
	nc, err := Detect(n, edges, Options{Ranks: 3, UseNeighborCollectives: true})
	if err != nil {
		t.Fatal(err)
	}
	if nc.Modularity != base.Modularity || nc.NumCommunities != base.NumCommunities {
		t.Fatalf("neighbor collectives changed the result: %v vs %v", nc.Modularity, base.Modularity)
	}
	// Coloring: valid result of comparable quality.
	col, err := Detect(n, edges, Options{Ranks: 3, UseColoring: true})
	if err != nil {
		t.Fatal(err)
	}
	if col.Modularity < base.Modularity-0.05 {
		t.Fatalf("coloring quality: %.4f vs %.4f", col.Modularity, base.Modularity)
	}
	if math.Abs(Modularity(n, edges, col.Communities)-col.Modularity) > 1e-9 {
		t.Fatal("colored run reports wrong modularity")
	}
}
