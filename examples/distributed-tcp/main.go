// Distributed TCP deployment: run the Louvain ranks as TCP endpoints on a
// full socket mesh — the same wire protocol cmd/dlouvain uses across OS
// processes or machines — from a single demonstration binary.
//
// Each rank dials/accepts its peers, reads its segment of the shared input,
// builds its partition of the distributed graph, and runs the SPMD
// algorithm; all coordination happens through length-prefixed frames on the
// sockets, never through shared memory.
//
//	go run ./examples/distributed-tcp
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"

	"distlouvain/internal/core"
	"distlouvain/internal/dgraph"
	"distlouvain/internal/gen"
	"distlouvain/internal/gio"
	"distlouvain/internal/mpi"
)

const ranks = 3

func main() {
	// Write a shared input file, as a cluster deployment would.
	n, edges, truth, err := gen.SSCA2(gen.SSCA2Options{N: 20000, MaxCliqueSize: 30, InterProb: 0.02, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	_ = truth
	dir, err := os.MkdirTemp("", "dlouvain-tcp")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.bin")
	if err := gio.WriteBinary(path, n, edges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d vertices, %d edges at %s\n", n, len(edges), path)

	// Reserve one loopback port per rank.
	addrs := make([]string, ranks)
	for r := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		addrs[r] = ln.Addr().String()
		ln.Close()
	}

	var wg sync.WaitGroup
	results := make([]*core.Result, ranks)
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = func() error {
				tp, err := mpi.DialTCPWorld(mpi.TCPWorldConfig{Rank: r, Addrs: addrs})
				if err != nil {
					return err
				}
				defer tp.Close()
				c := mpi.NewComm(tp)
				chunk, err := gio.ReadSegment(path, r, ranks)
				if err != nil {
					return err
				}
				dg, err := dgraph.Build(c, n, chunk, nil)
				if err != nil {
					return err
				}
				cfg := core.ETC(0.25)
				cfg.GatherOutput = true
				res, err := core.Run(dg, cfg)
				if err != nil {
					return err
				}
				results[r] = res
				return nil
			}()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", r, err)
		}
	}

	root := results[0]
	fmt.Printf("detected %d communities, modularity %.6f, %d phases, %d iterations\n",
		root.Communities, root.Modularity, len(root.Phases), root.TotalIterations)
	for r, res := range results {
		fmt.Printf("rank %d: owns vertices [%d,%d), sent %.2f MB over TCP\n",
			r, res.LocalBase, res.LocalBase+int64(len(res.LocalComm)),
			float64(res.Traffic.SentBytes+res.Traffic.CollBytes)/1e6)
	}
	fmt.Println("\nexpected (paper Table V): SSCA#2 clique graphs score modularity ≈ 0.99")
}
