// Ground-truth evaluation: generate LFR benchmark graphs with known
// community structure (the paper's Table VII methodology), run the
// distributed detection, and score precision / recall / F-score / NMI.
//
//	go run ./examples/groundtruth
package main

import (
	"fmt"
	"log"

	"distlouvain"
)

func main() {
	fmt.Printf("%-8s %-8s %10s %10s %10s %10s\n", "|V|", "mu", "precision", "recall", "F-score", "NMI")
	for _, size := range []int64{5000, 10000, 20000} {
		for _, mu := range []float64{0.1, 0.2, 0.3} {
			n, edges, truth, err := distlouvain.GenerateLFR(size, mu, uint64(size)+uint64(mu*100))
			if err != nil {
				log.Fatal(err)
			}
			res, err := distlouvain.Detect(n, edges, distlouvain.Options{
				Ranks:   4,
				Variant: distlouvain.EarlyTerminationC,
				Alpha:   0.25,
			})
			if err != nil {
				log.Fatal(err)
			}
			score, err := distlouvain.CompareToGroundTruth(res.Communities, truth)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %-8.1f %10.4f %10.4f %10.4f %10.4f\n",
				size, mu, score.Precision, score.Recall, score.FScore, score.NMI)
		}
	}
	fmt.Println("\nexpected shape (paper Table VII): recall 1.0 throughout; precision")
	fmt.Println("and F-score high, decreasing gently with size and mixing.")
}
