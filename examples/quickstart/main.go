// Quickstart: detect communities in a small hand-built graph with the
// public API, print the assignment, and verify the modularity.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"distlouvain"
)

func main() {
	// Two 4-cliques joined by a single bridge edge — the canonical
	// community-detection example.
	var edges []distlouvain.Edge
	addClique := func(vs ...int64) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				edges = append(edges, distlouvain.Edge{U: vs[i], V: vs[j], W: 1})
			}
		}
	}
	addClique(0, 1, 2, 3)
	addClique(4, 5, 6, 7)
	edges = append(edges, distlouvain.Edge{U: 3, V: 4, W: 1})

	// Run the distributed Louvain method on 2 simulated ranks.
	res, err := distlouvain.Detect(8, edges, distlouvain.Options{Ranks: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d communities, modularity %.4f, %d iterations in %v\n",
		res.NumCommunities, res.Modularity, res.TotalIterations, res.Runtime)
	for v, c := range res.Communities {
		fmt.Printf("  vertex %d -> community %d\n", v, c)
	}

	// The reported modularity always matches an independent recomputation.
	check := distlouvain.Modularity(8, edges, res.Communities)
	fmt.Printf("independent modularity check: %.4f\n", check)
}
