// Social-network scenario: compare the paper's algorithm variants on a
// synthetic social graph with friendster-like community structure, the
// workload family the paper's introduction motivates ("social networks,
// retail and financial networks").
//
// The example shows the trade-off the paper's §IV-B heuristics make:
// Early Termination (ET/ETC) cuts iterations and communication for a small
// modularity cost; Threshold Cycling saves iterations in the early, large
// phases.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"distlouvain"
)

func main() {
	// A 30k-vertex graph with moderately mixed communities (μ=0.35 gives
	// a friendster-like modularity around 0.6).
	n, edges, _, err := distlouvain.GenerateLFR(30000, 0.35, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d members, %d friendships\n\n", n, len(edges))

	type config struct {
		name string
		opt  distlouvain.Options
	}
	configs := []config{
		{"Baseline", distlouvain.Options{Ranks: 4}},
		{"Threshold Cycling", distlouvain.Options{Ranks: 4, Variant: distlouvain.ThresholdCycling}},
		{"ET(0.25)", distlouvain.Options{Ranks: 4, Variant: distlouvain.EarlyTermination, Alpha: 0.25}},
		{"ET(0.75)", distlouvain.Options{Ranks: 4, Variant: distlouvain.EarlyTermination, Alpha: 0.75}},
		{"ETC(0.25)", distlouvain.Options{Ranks: 4, Variant: distlouvain.EarlyTerminationC, Alpha: 0.25}},
	}

	fmt.Printf("%-18s %12s %10s %8s %8s %10s\n", "variant", "communities", "Q", "iters", "time", "MB sent")
	for _, c := range configs {
		res, err := distlouvain.Detect(n, edges, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12d %10.4f %8d %7.2fs %10.2f\n",
			c.name, res.NumCommunities, res.Modularity, res.TotalIterations,
			res.Runtime.Seconds(), float64(res.BytesCommunicated)/1e6)
	}

	fmt.Println("\nexpected shape (paper Fig. 3 / Table IV): ET and ETC run fewer")
	fmt.Println("iterations and move fewer bytes than Baseline at nearly the same Q.")
}
